package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// stitchedTrace mirrors the Chrome trace-event envelope including the
// stitched-export metadata block.
type stitchedTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	Metadata map[string]any `json:"metadata"`
}

// delegatedSeed finds a seed whose design key node i does NOT own, so a
// submission there delegates to a peer. Returns the seed and the owner.
func delegatedSeed(t *testing.T, tc *testCluster, i int) (int64, string) {
	t.Helper()
	for seed := int64(100); seed < 200; seed++ {
		req := smallJob()
		req.Seed = seed
		js, err := normalize(req)
		if err != nil {
			t.Fatal(err)
		}
		if owner, remote := tc.srvs[i].mgr.cluster.RemoteOwner(js.key); remote {
			return seed, owner
		}
	}
	t.Fatal("no remote-owned seed in 100 tries")
	return 0, ""
}

// postTraced submits a design request with an explicit traceparent
// header, as an instrumented client would.
func postTraced(t *testing.T, url, traceparent string, req DesignRequest) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("traceparent", traceparent)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestClusterStitchedTrace is the distributed-tracing contract test: a
// design submitted to node A with a client traceparent and evaluated on
// node B (the ring owner) exports ONE trace — the client's trace ID in
// the metadata, node A's admission/queue-wait/peer-hop spans as one
// process and node B's search spans as a second process, stitched into
// a single Perfetto-loadable document.
func TestClusterStitchedTrace(t *testing.T) {
	tc := newTestCluster(t, 3)
	seed, owner := delegatedSeed(t, tc, 0)

	const clientTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	tp := "00-" + clientTrace + "-00f067aa0ba902b7-01"
	req := smallJob()
	req.Seed = seed
	resp, body := postTraced(t, tc.urls[0]+"/v1/designs", tp, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	// The middleware echoes the (possibly joined) trace identity.
	if got := resp.Header.Get("traceparent"); got != tp {
		t.Errorf("response traceparent = %q, want the client's %q", got, tp)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if final := pollJob(t, tc.urls[0], st.ID); final.State != JobDone {
		t.Fatalf("job state %s (%s)", final.State, final.Error)
	}

	var tr stitchedTrace
	if code := getJSON(t, tc.urls[0]+"/v1/designs/"+st.ID+"/trace", &tr); code != http.StatusOK {
		t.Fatalf("GET trace: %d", code)
	}
	if got, _ := tr.Metadata["trace_id"].(string); got != clientTrace {
		t.Errorf("stitched trace_id = %q, want the client's %q", got, clientTrace)
	}

	// Two processes: node 0 (the submitting node) and the owner.
	procs := map[int]string{}
	pidEvents := map[int]int{}
	names := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.PID], _ = ev.Args["name"].(string)
			continue
		}
		if ev.Ph != "M" {
			pidEvents[ev.PID]++
			names[fmt.Sprintf("%d/%s", ev.PID, ev.Name)] = true
		}
	}
	if len(procs) != 2 || procs[1] != tc.urls[0] || procs[2] != owner {
		t.Fatalf("process rows = %v, want {1:%s, 2:%s}", procs, tc.urls[0], owner)
	}
	if pidEvents[1] == 0 || pidEvents[2] == 0 {
		t.Fatalf("events per process = %v, want spans from both nodes", pidEvents)
	}
	for _, want := range []string{"1/admission", "1/queue-wait", "1/peer-hop", "2/queue-wait", "2/search"} {
		if !names[want] {
			t.Errorf("stitched trace missing span %s", want)
		}
	}
	// The owner actually ran the GA: its process carries generation spans.
	gens := false
	for n := range names {
		if strings.HasPrefix(n, "2/generation ") {
			gens = true
		}
	}
	if !gens {
		t.Error("owner process has no search generation spans")
	}

	// The timeline endpoint merges both nodes' phases.
	var tl Timeline
	if code := getJSON(t, tc.urls[0]+"/v1/designs/"+st.ID+"/timeline", &tl); code != http.StatusOK {
		t.Fatalf("GET timeline: %d", code)
	}
	if tl.TraceID != clientTrace {
		t.Errorf("timeline trace_id = %q, want %q", tl.TraceID, clientTrace)
	}
	nodes := map[string]bool{}
	for _, p := range tl.Phases {
		nodes[p.Node] = true
	}
	if !nodes[tc.urls[0]] || !nodes[owner] {
		t.Errorf("timeline nodes = %v, want phases from both %s and %s", nodes, tc.urls[0], owner)
	}
}

// TestClusterBreakerOpenInstant kills a node and submits designs it
// owns: once its breaker opens, the degraded jobs carry a
// "breaker-open" instant on their trace naming the unreachable peer.
func TestClusterBreakerOpenInstant(t *testing.T) {
	tc := newTestCluster(t, 3)
	// Collect seeds owned (from node 0's view) by node 2, then kill it.
	var seeds []int64
	for seed := int64(300); seed < 500 && len(seeds) < 6; seed++ {
		req := smallJob()
		req.Seed = seed
		js, err := normalize(req)
		if err != nil {
			t.Fatal(err)
		}
		if owner, remote := tc.srvs[0].mgr.cluster.RemoteOwner(js.key); remote && owner == tc.urls[2] {
			seeds = append(seeds, seed)
		}
	}
	if len(seeds) < 2 {
		t.Skipf("ring gave node 2 only %d of the probed seeds", len(seeds))
	}
	tc.stop(t, 2)

	// The first submission's failed probe opens the breaker (with
	// growing backoff on every retry); a later one finds it open and
	// records the instant. Bounded by the seeds we found.
	for _, seed := range seeds {
		req := smallJob()
		req.Seed = seed
		resp, body := postJSON(t, tc.urls[0]+"/v1/designs", req)
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d %s", seed, resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if final := pollJob(t, tc.urls[0], st.ID); final.State != JobDone {
			t.Fatalf("seed %d: state %s (%s)", seed, final.State, final.Error)
		}
		var tr stitchedTrace
		if code := getJSON(t, tc.urls[0]+"/v1/designs/"+st.ID+"/trace", &tr); code != http.StatusOK {
			t.Fatalf("GET trace: %d", code)
		}
		for _, ev := range tr.TraceEvents {
			if ev.Name == "breaker-open" {
				if peer, _ := ev.Args["peer"].(string); peer != tc.urls[2] {
					t.Errorf("breaker-open peer = %q, want %q", peer, tc.urls[2])
				}
				return // contract witnessed
			}
		}
	}
	t.Error("no job recorded a breaker-open instant with a dead owner")
}

// TestTimelineEndpoint pins the end-to-end phase sequence of a durable
// verify job: admission → queue-wait → search → sim → wal-journal, all
// on the local node, with monotone starts and non-negative durations —
// the golden shape of a single-node job's life.
func TestTimelineEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, WALDir: t.TempDir()})
	req := smallJob()
	req.Verify = true
	resp, body := postJSON(t, ts.URL+"/v1/designs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if final := pollJob(t, ts.URL, st.ID); final.State != JobDone {
		t.Fatalf("job state %s (%s)", final.State, final.Error)
	}

	want := []string{"admission", "queue-wait", "search", "sim", "wal-journal"}
	// The wal-journal phase lands moments after the job turns terminal;
	// poll briefly rather than racing it.
	var tl Timeline
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/v1/designs/"+st.ID+"/timeline", &tl); code != http.StatusOK {
			t.Fatalf("GET timeline: %d", code)
		}
		if len(tl.Phases) >= len(want) || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	if tl.ID != st.ID || tl.State != JobDone {
		t.Errorf("timeline header = %s/%s, want %s/done", tl.ID, tl.State, st.ID)
	}
	if tl.TraceID == "" {
		t.Error("timeline carries no trace ID")
	}
	var got []string
	lastStart := int64(0)
	for _, p := range tl.Phases {
		got = append(got, p.Name)
		if p.Node != "local" {
			t.Errorf("phase %s node = %q, want local", p.Name, p.Node)
		}
		if p.DurUS < 0 {
			t.Errorf("phase %s duration %d < 0", p.Name, p.DurUS)
		}
		if p.StartUnixUS < lastStart {
			t.Errorf("phase %s starts before its predecessor", p.Name)
		}
		lastStart = p.StartUnixUS
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("phase sequence = %v, want %v", got, want)
	}

	// Both route spellings serve the same timeline.
	var alias Timeline
	if code := getJSON(t, ts.URL+"/jobs/"+st.ID+"/timeline", &alias); code != http.StatusOK {
		t.Fatalf("GET /jobs timeline: %d", code)
	}
	if alias.ID != tl.ID || len(alias.Phases) != len(tl.Phases) {
		t.Errorf("route alias disagrees: %d phases vs %d", len(alias.Phases), len(tl.Phases))
	}
}

// TestFleetEndpoint asserts GET /v1/fleet on any node aggregates every
// peer's snapshot, and that a dead peer is reported unreachable rather
// than silently dropped.
func TestFleetEndpoint(t *testing.T) {
	tc := newTestCluster(t, 3)

	var fl fleetResponse
	if code := getJSON(t, tc.urls[0]+"/v1/fleet", &fl); code != http.StatusOK {
		t.Fatalf("GET /v1/fleet: %d", code)
	}
	if len(fl.Nodes) != 3 || len(fl.Unreachable) != 0 {
		t.Fatalf("fleet = %d nodes, %d unreachable, want 3/0", len(fl.Nodes), len(fl.Unreachable))
	}
	seen := map[string]bool{}
	for _, ns := range fl.Nodes {
		seen[ns.Node] = true
		if len(ns.SLOBurn) == 0 {
			t.Errorf("node %s snapshot has no SLO burn rates", ns.Node)
		}
	}
	for _, u := range tc.urls {
		if !seen[u] {
			t.Errorf("fleet missing node %s", u)
		}
	}

	// A dead peer shows up as unreachable, and the survivors still report.
	tc.stop(t, 2)
	if code := getJSON(t, tc.urls[0]+"/v1/fleet", &fl); code != http.StatusOK {
		t.Fatalf("GET /v1/fleet after stop: %d", code)
	}
	if len(fl.Nodes) != 2 {
		t.Errorf("fleet after stop = %d nodes, want 2", len(fl.Nodes))
	}
	if len(fl.Unreachable) != 1 || fl.Unreachable[0] != tc.urls[2] {
		t.Errorf("unreachable = %v, want [%s]", fl.Unreachable, tc.urls[2])
	}
}

// TestWALMetricsExported asserts the journal's durability counters ride
// /metrics: a terminal job forces at least one fsync into the histogram
// and one record into the append counters.
func TestWALMetricsExported(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, WALDir: t.TempDir()})
	resp, body := postJSON(t, ts.URL+"/v1/designs", smallJob())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if final := pollJob(t, ts.URL, st.ID); final.State != JobDone {
		t.Fatalf("job state %s (%s)", final.State, final.Error)
	}
	if v := metricValue(t, ts.URL, "chrysalisd_wal_appends_total"); v < 2 {
		t.Errorf("wal appends = %g, want >= 2 (submit + terminal)", v)
	}
	if v := metricValue(t, ts.URL, "chrysalisd_wal_appended_bytes_total"); v <= 0 {
		t.Errorf("wal appended bytes = %g, want > 0", v)
	}
	if v := metricValue(t, ts.URL, "chrysalisd_wal_fsync_seconds_count"); v < 1 {
		t.Errorf("wal fsync count = %g, want >= 1", v)
	}
	if v := metricValue(t, ts.URL, "chrysalisd_wal_recovery_truncated_bytes"); v != 0 {
		t.Errorf("recovery truncated bytes = %g, want 0 on a fresh dir", v)
	}
	if v := metricValue(t, ts.URL, "obs_trace_dropped_total"); v < 0 {
		t.Errorf("obs_trace_dropped_total = %g", v)
	}
	if v := metricValue(t, ts.URL, "chrysalisd_job_slo_events_total"); v < 1 {
		t.Errorf("slo events = %g, want >= 1", v)
	}
}
