// Package serve is the CHRYSALIS design-as-a-service layer: a
// long-running HTTP/JSON daemon (cmd/chrysalisd) that exposes the
// describe → evaluate → explore pipeline as asynchronous design jobs.
//
// The paper frames CHRYSALIS as a service to AuT designers — submit a
// Spec, get back the ideal configuration — and this package realizes
// that framing with stdlib-only machinery:
//
//   - POST /v1/designs            submit an async design-search job
//   - GET  /v1/designs/{id}       job status / result
//   - DELETE /v1/designs/{id}     cancel a queued or running job
//   - GET  /v1/designs/{id}/events  live SSE telemetry (GA generations
//     and, for verify jobs, step-simulator events)
//   - GET  /v1/designs/{id}/trace   Chrome trace-event / Perfetto JSON
//     of the job's pipeline spans (also mounted as /jobs/{id}/trace)
//   - GET  /v1/designs/{id}/waveform  flight-recorder energy waveform
//     and per-cycle ledgers as JSON (default) or CSV (?format=csv)
//   - GET  /v1/designs/{id}/timeline  end-to-end job timeline (also
//     mounted as /jobs/{id}/timeline): admission, queue wait, peer
//     hop, search, sim replay and WAL journal as ordered phases —
//     across nodes for delegated jobs
//   - GET  /v1/designs/{id}/convergence  per-generation search-quality
//     series (best/mean/median, diversity, stagnation; hypervolume,
//     front size and spacing for Pareto runs) — live while the job
//     runs, from the cached result afterwards
//   - GET  /v1/fleet              aggregated cluster telemetry (every
//     peer's queue depth, cache hit ratio, breaker states, SLO burn)
//   - POST /v1/simulate           synchronous step-simulation
//   - GET  /v1/workloads          workload catalog
//   - GET  /v1/presets            deployment-scenario presets
//   - GET  /healthz               liveness
//   - GET  /metrics               Prometheus-style text metrics
//   - GET  /debug/dashboard       live HTML flight deck (inline SVG
//     waveforms, refreshed over the jobs' SSE streams, zero assets)
//   - GET  /debug/pprof/*         Go runtime profiles
//
// Internally a bounded worker pool (sized from GOMAXPROCS by default)
// drains a job queue with per-job context cancellation and an optional
// deadline; identical requests are deduplicated twice — in-flight jobs
// are shared single-flight, and finished results are served from a
// content-addressed LRU cache keyed on a canonical hash of the
// (Spec, SearchConfig, baseline) tuple — so a design is never searched
// twice while it is still cached.
package serve

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"chrysalis/internal/obs"
)

// Options configures a Server.
type Options struct {
	// Workers sizes the job worker pool (<= 0 selects GOMAXPROCS).
	Workers int
	// SearchWorkers is the default per-job search-evaluation concurrency
	// for requests that do not set search_workers themselves (<= 0 =
	// auto: ask for GOMAXPROCS). Whatever a job asks for, the actual
	// grant is bounded by a process-global semaphore sized to the CPU
	// slack the job pool leaves (GOMAXPROCS − Workers), so pool width ×
	// per-job search workers never oversubscribes the machine. Search
	// workers never change results — only wall-clock time.
	SearchWorkers int
	// QueueDepth bounds the backlog of queued jobs (<= 0 selects 64);
	// submissions beyond it are shed with 429 and a Retry-After hint
	// derived from the recent p50 job latency.
	QueueDepth int
	// CacheSize bounds the content-addressed result cache in entries
	// (<= 0 selects 128).
	CacheSize int
	// WarmCacheMB, when > 0, attaches a process-lifetime warm-start
	// tier of that many MiB to every job's search: near-duplicate jobs
	// reuse the plan ladders earlier jobs built for the same hardware
	// fingerprints instead of rebuilding them. In cluster mode the
	// consistent-hash ring routes each design to its owner, so every
	// node's tier specializes in its own key range. 0 (the default)
	// disables the tier. It never affects results — warm and cold jobs
	// return bit-identical designs.
	WarmCacheMB int
	// JobTimeout bounds each job's search wall-clock time (0 = none).
	JobTimeout time.Duration
	// MaxJobs bounds retained finished-job records (<= 0 selects 1024);
	// the oldest finished records are pruned first.
	MaxJobs int
	// TraceEvents bounds each job's span ring buffer (<= 0 selects
	// obs.DefaultTraceEvents); older spans are overwritten and counted
	// as dropped.
	TraceEvents int
	// Logger receives structured operational logs (nil discards them).
	Logger *slog.Logger

	// WALDir, when set, makes the job store durable: every accepted
	// submission and terminal transition is journaled to a checksummed
	// write-ahead log in this directory, and on startup queued and
	// running jobs are recovered and re-enqueued while finished ones
	// come back as servable history (done results re-seed the cache).
	WALDir string

	// Peers, when non-empty, runs this node as part of a cluster: the
	// listed base URLs (which must include Self, and be identical on
	// every node) form a consistent-hash ring over design keys, and jobs
	// whose key another node owns are resolved through that node's cache
	// or delegated to it — so identical designs submitted anywhere in
	// the cluster evaluate exactly once. A dead peer degrades its keys
	// to local evaluation; it never fails a request.
	Peers []string
	// Self is this node's own base URL as it appears in Peers.
	Self string
	// ClusterTimeout bounds each peer call (<= 0 selects the cluster
	// package default of 2s).
	ClusterTimeout time.Duration

	// QuotaRPS enables per-client admission quotas: each client
	// (X-API-Key header; missing = "anonymous") may submit this many
	// designs per second sustained, with bursts up to QuotaBurst
	// (<= 0 selects 2·QuotaRPS, minimum 1). Over-quota submissions are
	// shed with 429 + Retry-After. 0 disables quotas.
	QuotaRPS   float64
	QuotaBurst int

	// SLOLatency is the job-latency service-level objective target: a
	// job finishing within this wall-clock bound counts as good
	// (<= 0 selects 30s). Multi-window burn rates over the objective are
	// exported as chrysalisd_slo_burn_rate on /metrics and ride the
	// fleet snapshot.
	SLOLatency time.Duration
	// SLOObjective is the target good-fraction of jobs (outside (0,1)
	// selects 0.99). A burn rate of 1.0 means the error budget is being
	// consumed exactly at the sustainable pace.
	SLOObjective float64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 128
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 1024
	}
	if o.TraceEvents <= 0 {
		o.TraceEvents = obs.DefaultTraceEvents
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.SLOLatency <= 0 {
		o.SLOLatency = 30 * time.Second
	}
	if o.SLOObjective <= 0 || o.SLOObjective >= 1 {
		o.SLOObjective = 0.99
	}
	return o
}

// Server is the chrysalisd HTTP service: a job manager plus the route
// table over it. Create with New, mount Handler on an http.Server, and
// call Shutdown to drain.
type Server struct {
	opts Options
	mgr  *manager
	mux  *http.ServeMux
}

// New builds a Server, recovers any WAL state, and starts the worker
// pool. It fails when the WAL directory is unusable or the cluster
// configuration is inconsistent (e.g. Self missing from Peers).
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	mgr, err := newManager(opts)
	if err != nil {
		return nil, err
	}
	s := &Server{opts: opts, mgr: mgr, mux: http.NewServeMux()}
	s.routes()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/designs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/designs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/designs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/designs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/designs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/designs/{id}/waveform", s.handleWaveform)
	s.mux.HandleFunc("GET /v1/designs/{id}/timeline", s.handleTimeline)
	s.mux.HandleFunc("GET /v1/designs/{id}/convergence", s.handleConvergence)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /jobs/{id}/timeline", s.handleTimeline)
	s.mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	s.mux.HandleFunc("GET /debug/dashboard", s.handleDashboard)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/presets", s.handlePresets)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /internal/cache/{key}", s.handleInternalCache)
	s.mux.HandleFunc("POST /internal/designs", s.handleInternalSubmit)
	s.mux.HandleFunc("GET /internal/jobs/{id}/timeline", s.handleInternalTimeline)
	s.mux.HandleFunc("GET /internal/metrics/snapshot", s.handleMetricsSnapshot)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// Handler returns the route table wrapped in the request-metrics and
// structured-logging middleware, ready to mount on an http.Server.
func (s *Server) Handler() http.Handler { return s.instrument(s.mux) }

// Shutdown stops accepting jobs and drains the queue and in-flight
// work. If ctx expires first, remaining jobs are cancelled via their
// contexts and Shutdown returns ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error { return s.mgr.close(ctx) }
