package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"chrysalis/internal/core"
	"chrysalis/internal/dnn"
	"chrysalis/internal/explore"
	"chrysalis/internal/obs"
	"chrysalis/internal/sim"
	"chrysalis/internal/units"
)

// DesignRequest is the wire form of POST /v1/designs. Omitted fields
// take the same defaults as the chrysalis CLI, and two requests that
// normalize to the same values share one cache key — and therefore one
// search.
type DesignRequest struct {
	// Workload names a catalog workload (default "har").
	Workload string `json:"workload,omitempty"`
	// WorkloadJSON inlines a custom workload in the internal/dnn JSON
	// schema; it overrides Workload.
	WorkloadJSON json.RawMessage `json:"workload_json,omitempty"`
	// Platform is "msp430" (default) or "accel".
	Platform string `json:"platform,omitempty"`
	// Objective is "lat", "sp" or "lat*sp" (default).
	Objective string `json:"objective,omitempty"`
	// Baseline is the search space: "chrysalis" (default) or one of the
	// Table VI ablations (wo/Cap, wo/SP, wo/EA, wo/PE, wo/Cache, wo/IA).
	Baseline string `json:"baseline,omitempty"`
	// MaxPanelCM2 bounds the panel for the lat objective (0 = 30 cm²).
	MaxPanelCM2 float64 `json:"max_panel_cm2,omitempty"`
	// MaxLatencyS bounds latency for the sp objective (0 = 30 s).
	MaxLatencyS float64 `json:"max_latency_s,omitempty"`
	// Budget approximates the search-evaluation budget (0 = 400).
	Budget int `json:"budget,omitempty"`
	// Seed seeds the search (default 1 so equal requests cache-hit).
	Seed int64 `json:"seed,omitempty"`
	// Algorithm is "ga" (default), "random", or "nsga" (multi-objective
	// Pareto search; the result carries the front and the convergence
	// endpoint reports hypervolume).
	Algorithm string `json:"algorithm,omitempty"`
	// Patience enables the plateau early-stop policy: stop after N
	// generations whose relative best-objective (or hypervolume)
	// improvement stays below ~0.1%. Unlike SearchWorkers it changes the
	// result, so it IS part of the cache key. 0 (default) disables it.
	Patience int `json:"patience,omitempty"`
	// Verify replays the winning design on the co-simulator after the
	// search, streaming its events over SSE and attaching the summary.
	Verify bool `json:"verify,omitempty"`
	// SimMode selects the co-simulator core for the verify replay:
	// "event" (default; analytic fast path), "step" (bit-honest
	// fixed-step oracle) or "differential" (run both, fail the job on
	// divergence).
	SimMode string `json:"sim_mode,omitempty"`
	// SearchWorkers requests a per-job search-evaluation concurrency
	// (0 = server default, which defaults to auto/GOMAXPROCS). The
	// actual grant is capped by the server's worker gate so concurrent
	// jobs never oversubscribe the machine. Deliberately NOT part of the
	// cache key: results are bit-identical for any worker count, so two
	// requests differing only here must share one search.
	SearchWorkers int `json:"search_workers,omitempty"`
}

// jobSpec is a fully normalized, validated design request: the exact
// problem a worker will run, plus its content-addressed cache key.
type jobSpec struct {
	spec     core.Spec
	baseline explore.Baseline
	verify   bool
	// searchWorkers is the requested per-job evaluation concurrency
	// (0 = server default). Excluded from key: it never changes results.
	searchWorkers int
	key           string
	// req is the request with defaults applied — the durable wire form
	// the WAL journal persists and cluster delegation forwards.
	// Re-normalizing req yields this jobSpec back (same key).
	req DesignRequest
	// noDelegate pins the job to local evaluation. Set on submissions
	// arriving over /internal/designs so a delegated job can never hop
	// to a third node, even if peers momentarily disagree on the ring.
	noDelegate bool
	// tc is the submitting request's trace context; the job's own trace
	// becomes its child so one distributed trace spans client →
	// submission → (delegation →) evaluation. Excluded from the cache
	// key: identity never changes results.
	tc obs.TraceContext
}

// keyPayload is the canonical identity of a design request: every field
// that changes the search outcome, in a fixed order, with defaults
// already applied. Callback fields (Progress/Stop) and SearchWorkers
// are deliberately absent — they never alter the result (the search is
// bit-identical for any worker count).
type keyPayload struct {
	Workload   string  `json:"workload"`
	Platform   string  `json:"platform"`
	Objective  string  `json:"objective"`
	Baseline   string  `json:"baseline"`
	MaxPanel   float64 `json:"max_panel"`
	MaxLatency float64 `json:"max_latency"`
	Budget     int     `json:"budget"`
	Seed       int64   `json:"seed"`
	Algorithm  string  `json:"algorithm"`
	Patience   int     `json:"patience"`
	Verify     bool    `json:"verify"`
	SimMode    string  `json:"sim_mode"`
}

// normalize applies defaults, validates every field, and computes the
// canonical cache key.
func normalize(req DesignRequest) (jobSpec, error) {
	if req.Workload == "" {
		req.Workload = "har"
	}
	if req.Platform == "" {
		req.Platform = "msp430"
	}
	if req.Objective == "" {
		req.Objective = "lat*sp"
	}
	if req.Baseline == "" {
		req.Baseline = "chrysalis"
	}
	if req.Algorithm == "" {
		req.Algorithm = "ga"
	}
	if req.Budget == 0 {
		req.Budget = 400
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.SimMode == "" {
		req.SimMode = "event"
	}
	simMode, err := sim.ParseMode(req.SimMode)
	if err != nil {
		return jobSpec{}, err
	}

	switch {
	case req.Budget < 0:
		return jobSpec{}, fmt.Errorf("budget must be positive, got %d", req.Budget)
	case req.MaxPanelCM2 < 0:
		return jobSpec{}, fmt.Errorf("max_panel_cm2 must be non-negative, got %g", req.MaxPanelCM2)
	case req.MaxLatencyS < 0:
		return jobSpec{}, fmt.Errorf("max_latency_s must be non-negative, got %g", req.MaxLatencyS)
	case req.SearchWorkers < 0:
		return jobSpec{}, fmt.Errorf("search_workers must be non-negative, got %d", req.SearchWorkers)
	case req.Patience < 0:
		return jobSpec{}, fmt.Errorf("patience must be non-negative, got %d", req.Patience)
	}
	switch req.Algorithm {
	case "ga", "random", "nsga":
	default:
		return jobSpec{}, fmt.Errorf("unknown algorithm %q (want ga, random or nsga)", req.Algorithm)
	}

	js := jobSpec{verify: req.Verify, searchWorkers: req.SearchWorkers}
	switch req.Platform {
	case "msp430":
		js.spec.Platform = explore.MSP
	case "accel":
		js.spec.Platform = explore.Accel
	default:
		return jobSpec{}, fmt.Errorf("unknown platform %q (want msp430 or accel)", req.Platform)
	}
	obj, err := explore.ParseObjective(req.Objective)
	if err != nil {
		return jobSpec{}, err
	}
	js.spec.Objective = obj

	found := false
	for _, b := range explore.Baselines() {
		if b.String() == req.Baseline {
			js.baseline = b
			found = true
			break
		}
	}
	if !found {
		return jobSpec{}, fmt.Errorf("unknown baseline %q", req.Baseline)
	}

	// Resolve the workload now so bad requests fail at submission with a
	// 400 rather than as a failed job, and so inline workloads hash by
	// their canonical serialization, not the client's whitespace.
	var wkey string
	if len(req.WorkloadJSON) > 0 {
		w, err := dnn.ParseJSON(req.WorkloadJSON)
		if err != nil {
			return jobSpec{}, err
		}
		canon, err := w.ToJSON()
		if err != nil {
			return jobSpec{}, err
		}
		js.spec.Workload = &w
		wkey = "json:" + string(canon)
	} else {
		if _, err := dnn.ByName(req.Workload); err != nil {
			return jobSpec{}, err
		}
		js.spec.WorkloadName = req.Workload
		wkey = "name:" + req.Workload
	}

	js.spec.MaxPanel = units.AreaCM2(req.MaxPanelCM2)
	js.spec.MaxLatency = units.Seconds(req.MaxLatencyS)
	js.spec.SimMode = simMode
	js.spec.Search = core.SearchConfig{
		Algorithm: req.Algorithm,
		Budget:    req.Budget,
		Seed:      req.Seed,
		Patience:  req.Patience,
	}

	payload, err := json.Marshal(keyPayload{
		Workload:   wkey,
		Platform:   req.Platform,
		Objective:  obj.String(),
		Baseline:   js.baseline.String(),
		MaxPanel:   req.MaxPanelCM2,
		MaxLatency: req.MaxLatencyS,
		Budget:     req.Budget,
		Seed:       req.Seed,
		Algorithm:  req.Algorithm,
		Patience:   req.Patience,
		Verify:     req.Verify,
		SimMode:    simMode.String(),
	})
	if err != nil {
		return jobSpec{}, err
	}
	sum := sha256.Sum256(payload)
	js.key = hex.EncodeToString(sum[:])
	js.req = req
	return js, nil
}
