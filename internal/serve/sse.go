package serve

import (
	"encoding/json"
	"fmt"
	"sync"
)

// maxStreamHistory bounds each job's event replay buffer; later events
// still reach live subscribers but are not replayed to late joiners.
const maxStreamHistory = 512

// sseEvent is one server-sent event: a name plus a JSON data payload.
type sseEvent struct {
	name string
	data []byte
}

// stream is a per-job telemetry broadcaster. Events published while the
// job runs are buffered (up to maxStreamHistory) so subscribers that
// connect late replay the full history, then receive live events until
// the stream closes.
type stream struct {
	mu      sync.Mutex
	history []sseEvent
	dropped int
	subs    map[chan sseEvent]struct{}
	closed  bool
}

func newStream() *stream {
	return &stream{subs: make(map[chan sseEvent]struct{})}
}

// publish marshals v and broadcasts it under the event name. Slow
// subscribers lose events rather than stalling the publisher.
func (s *stream) publish(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	ev := sseEvent{name: name, data: data}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if len(s.history) < maxStreamHistory {
		s.history = append(s.history, ev)
	} else {
		s.dropped++
	}
	for ch := range s.subs {
		select {
		case ch <- ev:
		default: // subscriber is not draining; drop rather than block
		}
	}
}

// close ends the stream; every subscriber channel is closed after its
// pending events drain. Publishing after close is a no-op.
func (s *stream) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for ch := range s.subs {
		close(ch)
	}
	s.subs = nil
}

// subscribe returns a channel primed with the replay history followed
// by live events; the channel is closed when the stream closes. The
// returned cancel func detaches the subscriber (idempotent, safe after
// close).
func (s *stream) subscribe() (<-chan sseEvent, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan sseEvent, len(s.history)+256)
	for _, ev := range s.history {
		ch <- ev
	}
	if s.closed {
		close(ch)
		return ch, func() {}
	}
	s.subs[ch] = struct{}{}
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.subs != nil {
			delete(s.subs, ch)
		}
	}
	return ch, cancel
}
