package serve

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
)

// fetchConvergence GETs one job's convergence series.
func fetchConvergence(t *testing.T, base, id string) Convergence {
	t.Helper()
	var c Convergence
	if code := getJSON(t, base+"/v1/designs/"+id+"/convergence", &c); code != http.StatusOK {
		t.Fatalf("GET convergence: status %d", code)
	}
	return c
}

// TestConvergeSmoke is the end-to-end check behind `make converge-smoke`:
// submit a short GA job with Patience set, then assert the convergence
// endpoint serves a monotone-best series parallel to the scalar history,
// the "quality" SSE events streamed one per generation, and a cached
// resubmission replays the identical series from the result cache.
func TestConvergeSmoke(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := smallJob()
	req.Budget = 400
	req.Patience = 3

	resp, body := postJSON(t, ts.URL+"/v1/designs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, ts.URL, st.ID)
	if final.State != JobDone || final.Result == nil {
		t.Fatalf("job state %s (%s)", final.State, final.Error)
	}

	c := fetchConvergence(t, ts.URL, st.ID)
	if c.State != JobDone || c.Algorithm != "ga" {
		t.Fatalf("convergence header wrong: %+v", c)
	}
	if c.Generations == 0 || c.Generations != len(c.Series) || len(c.Series) != len(c.History) {
		t.Fatalf("series/history mismatch: gens=%d series=%d history=%d",
			c.Generations, len(c.Series), len(c.History))
	}
	for i, q := range c.Series {
		if q.Gen != i+1 || q.Best != c.History[i] {
			t.Fatalf("generation %d record diverges from history: %+v vs %g", i+1, q, c.History[i])
		}
		if q.Feasible == 0 || q.Mean < q.Best || q.Evals == 0 {
			t.Fatalf("generation %d stats inconsistent: %+v", i+1, q)
		}
		// Elitism makes the best series monotone non-increasing; this is
		// the converge-smoke acceptance assertion.
		if i > 0 && q.Best > c.Series[i-1].Best {
			t.Fatalf("best objective regressed at generation %d: %g -> %g",
				i+1, c.Series[i-1].Best, q.Best)
		}
	}
	if c.StoppedEarly != final.Result.StoppedEarly {
		t.Fatalf("stopped_early %v diverges from result %v", c.StoppedEarly, final.Result.StoppedEarly)
	}

	// One "quality" SSE event per generation rides the stream replay.
	counts := readSSE(t, ts.URL+"/v1/designs/"+st.ID+"/events")
	if counts["quality"] != c.Generations {
		t.Errorf("quality SSE events = %d, want %d", counts["quality"], c.Generations)
	}
	if gens := metricValue(t, ts.URL, "chrysalis_search_generations_total"); gens != float64(c.Generations) {
		t.Errorf("generation counter = %g, want %d", gens, c.Generations)
	}
	if c.StoppedEarly {
		if stops := metricValue(t, ts.URL, "chrysalis_search_early_stops_total"); stops != 1 {
			t.Errorf("early-stop counter = %g, want 1", stops)
		}
	}

	// A cache-hit job materializes with the full result, so its
	// convergence series must replay identically without a new search.
	resp2, body2 := postJSON(t, ts.URL+"/v1/designs", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp2.StatusCode, body2)
	}
	var st2 JobStatus
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatalf("resubmit not cached: %s", body2)
	}
	c2 := fetchConvergence(t, ts.URL, st2.ID)
	c2.ID = c.ID
	if !reflect.DeepEqual(c, c2) {
		t.Error("cached job's convergence series diverges from the original")
	}

	// Unknown jobs are a 404.
	if code := getJSON(t, ts.URL+"/v1/designs/j-999999/convergence", nil); code != http.StatusNotFound {
		t.Errorf("convergence for unknown job: %d", code)
	}
}

// TestConvergenceParetoJob checks the front-quality indicators of an
// NSGA job reach the wire: per-generation hypervolume (which is also
// the scalar history for Pareto runs), front size and the front itself
// on the result.
func TestConvergenceParetoJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := DesignRequest{Workload: "har", Budget: 240, Seed: 3, Algorithm: "nsga"}

	resp, body := postJSON(t, ts.URL+"/v1/designs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, ts.URL, st.ID)
	if final.State != JobDone || final.Result == nil {
		t.Fatalf("job state %s (%s)", final.State, final.Error)
	}
	if len(final.Result.Front) == 0 {
		t.Fatal("nsga result carries no Pareto front")
	}

	c := fetchConvergence(t, ts.URL, st.ID)
	if c.Algorithm != "nsga" || c.Generations == 0 {
		t.Fatalf("convergence header wrong: %+v", c)
	}
	for i, q := range c.Series {
		if q.Hypervolume != c.History[i] {
			t.Fatalf("generation %d: history %g is not the hypervolume %g",
				i+1, c.History[i], q.Hypervolume)
		}
	}
	last := c.Series[len(c.Series)-1]
	if last.Hypervolume <= 0 || last.FrontSize < 1 {
		t.Fatalf("final front-quality indicators missing: %+v", last)
	}
	if last.Best <= 0 || last.Mean < last.Best {
		t.Fatalf("scalarized population stats missing: %+v", last)
	}
}
