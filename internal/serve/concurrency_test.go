package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
)

// TestParallelIdenticalRequestsSingleFlight fires N identical design
// requests concurrently and asserts exactly one underlying search ran:
// every response shares one job, the queue accepted one job, and the
// metrics report N-1 hits against 1 miss.
func TestParallelIdenticalRequestsSingleFlight(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})

	const n = 12
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		ids = map[string]int{}
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, _ := json.Marshal(smallJob())
			resp, err := http.Post(ts.URL+"/v1/designs", "application/json",
				bytes.NewReader(data))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			mu.Lock()
			ids[st.ID]++
			mu.Unlock()
		}()
	}
	wg.Wait()

	// All requests coalesced while in flight (a request landing after
	// completion materializes a new cached job record, still without a
	// new search — so allow >1 distinct IDs but require one search).
	if queued := metricValue(t, ts.URL, "chrysalisd_jobs_queued_total"); queued != 1 {
		t.Errorf("jobs queued = %g, want exactly 1 underlying search", queued)
	}
	if misses := metricValue(t, ts.URL, "chrysalisd_cache_misses_total"); misses != 1 {
		t.Errorf("cache misses = %g, want 1", misses)
	}
	if hits := metricValue(t, ts.URL, "chrysalisd_cache_hits_total"); hits != n-1 {
		t.Errorf("cache hits = %g, want %d", hits, n-1)
	}

	// Every submitted ID resolves, and they all finish done with the
	// same result.
	var lat float64
	for id := range ids {
		st := pollJob(t, ts.URL, id)
		if st.State != JobDone {
			t.Fatalf("job %s state %s (%s)", id, st.State, st.Error)
		}
		if st.Result == nil {
			t.Fatalf("job %s missing result", id)
		}
		if lat == 0 {
			lat = float64(st.Result.AvgLatency)
		} else if float64(st.Result.AvgLatency) != lat {
			t.Fatalf("job %s diverging result", id)
		}
	}
	if done := metricValue(t, ts.URL, "chrysalisd_jobs_done_total"); done != 1 {
		t.Errorf("jobs done = %g, want 1", done)
	}
}

// TestParallelDistinctRequests exercises the pool with distinct specs
// racing through the queue (run with -race to check the manager).
func TestParallelDistinctRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4})

	seeds := []int64{11, 12, 13, 14, 15}
	var wg sync.WaitGroup
	idCh := make(chan string, len(seeds))
	for _, seed := range seeds {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			req := smallJob()
			req.Seed = seed
			data, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/designs", "application/json", bytes.NewReader(data))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			idCh <- st.ID
		}(seed)
	}
	wg.Wait()
	close(idCh)

	distinct := map[string]bool{}
	for id := range idCh {
		st := pollJob(t, ts.URL, id)
		if st.State != JobDone {
			t.Fatalf("job %s state %s (%s)", id, st.State, st.Error)
		}
		distinct[id] = true
	}
	if len(distinct) != len(seeds) {
		t.Fatalf("distinct jobs = %d, want %d", len(distinct), len(seeds))
	}
	if misses := metricValue(t, ts.URL, "chrysalisd_cache_misses_total"); misses != float64(len(seeds)) {
		t.Errorf("cache misses = %g, want %d", misses, len(seeds))
	}
}
