package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"chrysalis/internal/core"
	"chrysalis/internal/dnn"
	"chrysalis/internal/explore"
	"chrysalis/internal/obs"
	"chrysalis/internal/units"
)

// maxBodyBytes bounds request bodies (inline workloads included).
const maxBodyBytes = 1 << 20

// writeJSON renders v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders an error payload.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// handleSubmit accepts a design job: 202 for a new search, 200 when the
// request coalesced onto an in-flight job or was served from the cache,
// 429 with Retry-After when admission control sheds it (client over
// quota, or the job queue is full). 503 means shutdown, nothing else.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	admStart := time.Now()
	if adm := s.mgr.adm; adm != nil {
		if ok, retry := adm.allow(r.Header.Get("X-API-Key")); !ok {
			s.mgr.met.shed.With("quota").Inc()
			w.Header().Set("Retry-After", retryAfterValue(retry))
			writeError(w, http.StatusTooManyRequests, errors.New("client quota exhausted"))
			return
		}
	}
	var req DesignRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid design request: %w", err))
		return
	}
	js, err := normalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	js.tc = traceFromRequest(r)
	j, reused, err := s.mgr.submit(js)
	switch {
	case errors.Is(err, ErrQueueFull):
		s.mgr.met.shed.With("queue_full").Inc()
		w.Header().Set("Retry-After", retryAfterValue(s.mgr.retryAfterQueue()))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !reused {
		// Quota check, decode, normalization and enqueue — the admission
		// cost the client paid before the job existed.
		s.mgr.addPhase(j, "admission", admStart, time.Now())
	}
	code := http.StatusAccepted
	if reused {
		code = http.StatusOK
	}
	writeJSON(w, code, j.status())
}

// handleGet reports one job's status and, when finished, its result.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleCancel cancels a queued or running job.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.mgr.cancelJob(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	j, _ := s.mgr.get(id)
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleEvents streams a job's telemetry as server-sent events:
// "state" transitions, "progress" GA generations, "quality" search
// telemetry per generation, "sim" step-simulator events for verify
// jobs, and a terminal "done" carrying the full job status. Subscribers
// that connect late replay the buffered history.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported by connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	events, cancel := j.stream.subscribe()
	defer cancel()
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return // job finished and history fully delivered
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleTrace serves a job's recorded pipeline spans as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing: search generations, explorer score/evaluate and
// ladder builds and, for verify jobs, the step simulator's power
// cycles, tiles and checkpoint activity on the simulated clock. A
// delegated job's export stitches the owner node's spans in as a
// second process sharing this job's trace ID.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.id+"-trace.json"))
	_ = obs.WriteStitched(w, j.trace.Context(), s.mgr.stitchedProcs(j))
}

// SimulateRequest is the wire form of POST /v1/simulate: a workload
// plus an explicit hardware configuration to replay on the step-based
// simulator (no search).
type SimulateRequest struct {
	Workload     string          `json:"workload,omitempty"`
	WorkloadJSON json.RawMessage `json:"workload_json,omitempty"`
	// Platform is "msp430" (default) or "accel".
	Platform     string  `json:"platform,omitempty"`
	PanelAreaCM2 float64 `json:"panel_area_cm2"`
	CapF         float64 `json:"cap_f"`
	// InferHW names the accelerator architecture for the accel platform
	// (e.g. "tpu", "eyeriss"); ignored for msp430.
	InferHW    string  `json:"infer_hw,omitempty"`
	NPE        int     `json:"npe,omitempty"`
	CacheBytes float64 `json:"cache_bytes,omitempty"`
}

// handleSimulate runs a synchronous step-simulation of one explicit
// design point.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid simulate request: %w", err))
		return
	}
	if req.PanelAreaCM2 <= 0 || req.CapF <= 0 {
		writeError(w, http.StatusBadRequest, errors.New("panel_area_cm2 and cap_f must be positive"))
		return
	}
	spec := core.Spec{WorkloadName: req.Workload}
	if spec.WorkloadName == "" {
		spec.WorkloadName = "har"
	}
	if len(req.WorkloadJSON) > 0 {
		wk, err := dnn.ParseJSON(req.WorkloadJSON)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		spec.WorkloadName = ""
		spec.Workload = &wk
	}
	res := core.Result{
		PanelArea: units.AreaCM2(req.PanelAreaCM2),
		Cap:       units.Capacitance(req.CapF),
		InferHW:   "msp430",
		NPE:       1,
	}
	switch req.Platform {
	case "", "msp430":
		spec.Platform = explore.MSP
	case "accel":
		spec.Platform = explore.Accel
		if req.InferHW == "" || req.NPE <= 0 || req.CacheBytes <= 0 {
			writeError(w, http.StatusBadRequest,
				errors.New("accel platform needs infer_hw, npe and cache_bytes"))
			return
		}
		res.InferHW = req.InferHW
		res.NPE = req.NPE
		res.CacheBytes = units.Bytes(req.CacheBytes)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown platform %q (want msp430 or accel)", req.Platform))
		return
	}
	run, err := core.Verify(spec, res)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, simSummary(run))
}

// WorkloadInfo is one catalog entry of GET /v1/workloads.
type WorkloadInfo struct {
	Name      string `json:"name"`
	Layers    int    `json:"layers"`
	ElemBytes int    `json:"elem_bytes"`
}

// handleWorkloads lists the built-in workload catalog.
func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	var out []WorkloadInfo
	for _, name := range dnn.Names() {
		wk, err := dnn.ByName(name)
		if err != nil {
			continue
		}
		out = append(out, WorkloadInfo{Name: name, Layers: len(wk.Layers), ElemBytes: wk.ElemBytes})
	}
	writeJSON(w, http.StatusOK, out)
}

// PresetInfo is one deployment scenario of GET /v1/presets.
type PresetInfo struct {
	Name        string `json:"name"`
	Domain      string `json:"domain"`
	Description string `json:"description"`
}

// handlePresets lists the built-in deployment scenarios.
func (s *Server) handlePresets(w http.ResponseWriter, _ *http.Request) {
	var out []PresetInfo
	for _, p := range core.Presets() {
		out = append(out, PresetInfo{Name: p.Name, Domain: p.Domain, Description: p.Description})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealth is the liveness probe.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"jobs":   s.mgr.jobCount(),
	})
}

// handleMetrics renders the Prometheus-style metrics page from the obs
// registry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.mgr.met.reg.WritePrometheus(w)
}
