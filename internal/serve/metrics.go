package serve

import (
	"context"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"chrysalis/internal/explore"
	"chrysalis/internal/obs"
	"chrysalis/internal/sim"
)

// latencyWindow bounds the job-latency reservoir the windowed quantiles
// are computed over (a sliding window of the most recent completions).
const latencyWindow = 1024

// metrics is the daemon's observability surface, built on the obs
// registry: counters and gauges for the job lifecycle and the request
// caches, histograms for job and HTTP latency, and render-time sampled
// functions for state owned elsewhere (the evaluator plan cache, the
// result cache, the job table).
type metrics struct {
	reg *obs.Registry

	jobsQueued    *obs.Counter
	jobsRunning   *obs.Gauge
	jobsDone      *obs.Counter
	jobsFailed    *obs.Counter
	jobsCancelled *obs.Counter
	jobsRecovered *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	evaluations   *obs.Counter
	shed          *obs.CounterVec
	jobLatency    *obs.Histogram

	// Search-observatory counters: one generation of telemetry per tick,
	// stagnant generations as flagged by the plateau detector, and runs
	// the Patience policy actually cut short.
	searchGenerations *obs.Counter
	stagnantGens      *obs.Counter
	searchEarlyStops  *obs.Counter

	httpRequests *obs.CounterVec
	httpLatency  *obs.Histogram

	// slo tracks the job-latency objective and its multi-window burn
	// rates (nil until newManager wires the configured target in; every
	// SLO method is nil-safe, so bare newMetrics() still works in tests).
	slo *obs.SLO

	// Windowed job-latency reservoir, kept alongside the histogram so
	// the p50/p95 quantiles over recent jobs stay queryable exactly
	// (histogram quantiles are bucket-interpolated estimates).
	mu       sync.Mutex
	lat      []float64
	latNext  int
	latCount int64
}

// newMetrics builds the registry and the families every server carries.
func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		jobsQueued: reg.Counter("chrysalisd_jobs_queued_total",
			"Design jobs accepted into the queue."),
		jobsRunning: reg.Gauge("chrysalisd_jobs_running",
			"Design jobs currently executing."),
		jobsDone: reg.Counter("chrysalisd_jobs_done_total",
			"Design jobs finished successfully."),
		jobsFailed: reg.Counter("chrysalisd_jobs_failed_total",
			"Design jobs finished with an error (including timeouts)."),
		jobsCancelled: reg.Counter("chrysalisd_jobs_cancelled_total",
			"Design jobs cancelled by clients or shutdown."),
		jobsRecovered: reg.Counter("chrysalisd_jobs_recovered_total",
			"Pending jobs re-enqueued from the WAL at startup."),
		cacheHits: reg.Counter("chrysalisd_cache_hits_total",
			"Design requests served from the result cache or coalesced onto an in-flight job."),
		cacheMisses: reg.Counter("chrysalisd_cache_misses_total",
			"Design requests that started a new search."),
		evaluations: reg.Counter("chrysalisd_evaluations_total",
			"Design searches actually executed on this node (not cached, coalesced or delegated)."),
		shed: reg.CounterVec("chrysalisd_admission_shed_total",
			"Submissions rejected with 429, by reason.", "reason"),
		jobLatency: reg.Histogram("chrysalisd_job_latency_seconds",
			"Job wall-clock latency from start to terminal state.", nil),
		searchGenerations: reg.Counter("chrysalis_search_generations_total",
			"Search generations completed across all jobs on this node."),
		stagnantGens: reg.Counter("chrysalis_search_stagnant_generations_total",
			"Generations whose relative improvement stayed below the plateau tolerance."),
		searchEarlyStops: reg.Counter("chrysalis_search_early_stops_total",
			"Searches stopped by the Patience plateau policy before their generation budget."),
		httpRequests: reg.CounterVec("chrysalisd_http_requests_total",
			"HTTP requests served.", "method", "code"),
		httpLatency: reg.Histogram("chrysalisd_http_request_seconds",
			"HTTP request handling latency.", nil),
	}
	reg.CounterFunc("chrysalisd_evaluator_cache_hits_total",
		"Plan-ladder fingerprint cache hits inside the evaluation engine.",
		func() int64 { h, _ := explore.EvalCacheCounters(); return h })
	reg.CounterFunc("chrysalisd_evaluator_cache_misses_total",
		"Plan-ladder fingerprint cache misses (ladder builds) inside the evaluation engine.",
		func() int64 { _, miss := explore.EvalCacheCounters(); return miss })
	reg.CounterFunc("chrysalisd_sim_fast_segments_total",
		"Analytic multi-step jumps taken by the event-driven simulator.",
		func() int64 { segs, _, _, _ := sim.EventStats(); return segs })
	reg.CounterFunc("chrysalisd_sim_fast_steps_total",
		"Simulator steps replaced by analytic jumps on the event fast path.",
		func() int64 { _, fast, _, _ := sim.EventStats(); return fast })
	reg.CounterFunc("chrysalisd_sim_literal_steps_total",
		"Simulator steps executed bit-honestly by the event simulator.",
		func() int64 { _, _, lit, _ := sim.EventStats(); return lit })
	reg.CounterFunc("chrysalisd_sim_fallback_runs_total",
		"Event-simulator runs that fell back to pure literal stepping.",
		func() int64 { _, _, _, fb := sim.EventStats(); return fb })
	reg.CounterFunc("obs_trace_dropped_total",
		"Spans overwritten by full trace ring buffers, process-wide.",
		obs.TraceDroppedTotal)
	obs.RegisterBuildInfo(reg)
	return m
}

// registerWarm exposes a warm-start tier's counters and residency on
// the registry. Called once from newManager when -warm-cache-mb > 0;
// the tier's own atomics are the source of truth, sampled at render
// time like the evaluator cache counters.
func (m *metrics) registerWarm(w *explore.WarmCache) {
	m.reg.CounterFunc("chrysalisd_warm_cache_hits_total",
		"Warm-tier lookups that reused a ladder set built by an earlier search.",
		func() int64 { return w.Stats().Hits })
	m.reg.CounterFunc("chrysalisd_warm_cache_misses_total",
		"Warm-tier lookups that found no reusable ladder set.",
		func() int64 { return w.Stats().Misses })
	m.reg.CounterFunc("chrysalisd_warm_cache_dedup_total",
		"Ladder builds avoided by the warm tier's single-flight group (waiters sharing a leader's build).",
		func() int64 { return w.Stats().Dedup })
	m.reg.CounterFunc("chrysalisd_warm_cache_evictions_total",
		"Warm-tier entries evicted by the byte bound.",
		func() int64 { return w.Stats().Evictions })
	m.reg.CounterFunc("chrysalisd_warm_cache_expirations_total",
		"Warm-tier entries dropped for a stale cost-model fingerprint.",
		func() int64 { return w.Stats().Expirations })
	m.reg.GaugeFunc("chrysalisd_warm_cache_bytes",
		"Estimated resident bytes of warm-tier ladder sets.",
		func() int64 { return w.Stats().Bytes })
	m.reg.GaugeFunc("chrysalisd_warm_cache_entries",
		"Resident warm-tier ladder sets.",
		func() int64 { return w.Stats().Entries })
	m.reg.GaugeFunc("chrysalisd_warm_cache_max_bytes",
		"Configured warm-tier byte bound.",
		func() int64 { return w.Stats().MaxBytes })
}

// observeLatency records one finished job's wall-clock seconds in both
// the histogram and the quantile reservoir.
func (m *metrics) observeLatency(sec float64) {
	m.jobLatency.Observe(sec)
	m.slo.Observe(sec)
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.lat) < latencyWindow {
		m.lat = append(m.lat, sec)
	} else {
		m.lat[m.latNext] = sec
		m.latNext = (m.latNext + 1) % latencyWindow
	}
	m.latCount++
}

// quantiles returns the nearest-rank p50 and p95 job latency over the
// window. The earlier truncating formula int(q·(len-1)) read one sample
// low at full windows (p95 over 1024 samples took index 971, not 972);
// obs.Quantile implements the unbiased nearest-rank definition and a
// regression test pins the difference.
func (m *metrics) quantiles() (p50, p95 float64, count int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.lat) == 0 {
		return 0, 0, m.latCount
	}
	sorted := append([]float64(nil), m.lat...)
	sort.Float64s(sorted)
	return obs.Quantile(sorted, 0.50), obs.Quantile(sorted, 0.95), m.latCount
}

// statusWriter records the response code while preserving the Flusher
// the SSE handler depends on.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traceCtxKey carries the request's TraceContext through the request
// context from the middleware to the handlers.
type traceCtxKey struct{}

// traceFromRequest returns the TraceContext the middleware attached to
// the request (invalid zero value when the handler runs unwrapped, as
// in direct-mux tests).
func traceFromRequest(r *http.Request) obs.TraceContext {
	tc, _ := r.Context().Value(traceCtxKey{}).(obs.TraceContext)
	return tc
}

// instrument wraps a handler with request metrics, structured request
// logging and W3C trace-context propagation: an incoming traceparent
// header joins the caller's distributed trace, any other request mints
// a fresh identity, and either way the response echoes the header so
// clients can correlate their submission with the job's trace export.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tc, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			tc = obs.NewTraceContext()
		}
		r = r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, tc))
		w.Header().Set("traceparent", tc.Traceparent())
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		elapsed := time.Since(start)
		s.mgr.met.httpRequests.With(r.Method, strconv.Itoa(sw.code)).Inc()
		s.mgr.met.httpLatency.Observe(elapsed.Seconds())
		s.opts.Logger.LogAttrs(r.Context(), requestLogLevel(r.URL.Path), "http request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.code),
			slog.Duration("elapsed", elapsed))
	})
}

// requestLogLevel demotes high-frequency scrape and probe endpoints to
// debug so the default info level stays readable.
func requestLogLevel(path string) slog.Level {
	if path == "/metrics" || path == "/healthz" || path == "/debug/dashboard" ||
		strings.HasPrefix(path, "/debug/pprof") {
		return slog.LevelDebug
	}
	return slog.LevelInfo
}
