package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// latencyWindow bounds the job-latency reservoir the quantiles are
// computed over (a sliding window of the most recent completions).
const latencyWindow = 1024

// metrics holds the daemon's observability counters. Everything is
// rendered as Prometheus exposition-format text by render — no
// dependencies, just counters, one gauge and two latency quantiles.
type metrics struct {
	jobsQueued    atomic.Int64
	jobsRunning   atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64

	mu       sync.Mutex
	lat      []float64 // ring buffer of job latencies in seconds
	latNext  int
	latCount int64
}

// observeLatency records one finished job's wall-clock seconds.
func (m *metrics) observeLatency(sec float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.lat) < latencyWindow {
		m.lat = append(m.lat, sec)
	} else {
		m.lat[m.latNext] = sec
		m.latNext = (m.latNext + 1) % latencyWindow
	}
	m.latCount++
}

// quantiles returns the p50 and p95 job latency over the window.
func (m *metrics) quantiles() (p50, p95 float64, count int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.lat) == 0 {
		return 0, 0, m.latCount
	}
	sorted := append([]float64(nil), m.lat...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.95), m.latCount
}

// render writes the exposition-format metrics page. cacheLen,
// jobRecords and the evaluator-cache counters are sampled by the
// caller so metrics stays decoupled from the job manager and the
// explore package.
func (m *metrics) render(w io.Writer, cacheLen, jobRecords int, evalHits, evalMisses int64) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("chrysalisd_jobs_queued_total", "Design jobs accepted into the queue.", m.jobsQueued.Load())
	gauge("chrysalisd_jobs_running", "Design jobs currently executing.", m.jobsRunning.Load())
	counter("chrysalisd_jobs_done_total", "Design jobs finished successfully.", m.jobsDone.Load())
	counter("chrysalisd_jobs_failed_total", "Design jobs finished with an error (including timeouts).", m.jobsFailed.Load())
	counter("chrysalisd_jobs_cancelled_total", "Design jobs cancelled by clients or shutdown.", m.jobsCancelled.Load())
	counter("chrysalisd_cache_hits_total", "Design requests served from the result cache or coalesced onto an in-flight job.", m.cacheHits.Load())
	counter("chrysalisd_cache_misses_total", "Design requests that started a new search.", m.cacheMisses.Load())
	counter("chrysalisd_evaluator_cache_hits_total", "Plan-ladder fingerprint cache hits inside the evaluation engine.", evalHits)
	counter("chrysalisd_evaluator_cache_misses_total", "Plan-ladder fingerprint cache misses (ladder builds) inside the evaluation engine.", evalMisses)
	gauge("chrysalisd_cache_entries", "Designs currently held by the result cache.", int64(cacheLen))
	gauge("chrysalisd_job_records", "Job records currently retained.", int64(jobRecords))

	p50, p95, count := m.quantiles()
	fmt.Fprintf(w, "# HELP chrysalisd_job_latency_seconds Job wall-clock latency quantiles over the last %d jobs.\n", latencyWindow)
	fmt.Fprintf(w, "# TYPE chrysalisd_job_latency_seconds summary\n")
	fmt.Fprintf(w, "chrysalisd_job_latency_seconds{quantile=\"0.5\"} %g\n", p50)
	fmt.Fprintf(w, "chrysalisd_job_latency_seconds{quantile=\"0.95\"} %g\n", p95)
	fmt.Fprintf(w, "chrysalisd_job_latency_seconds_count %d\n", count)
}
