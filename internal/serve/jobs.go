package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"chrysalis/internal/audit"
	"chrysalis/internal/cluster"
	"chrysalis/internal/core"
	"chrysalis/internal/explore"
	"chrysalis/internal/obs"
	"chrysalis/internal/search"
	"chrysalis/internal/sim"
)

// JobState is a job's position in its lifecycle:
// queued → running → done | failed | cancelled.
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Submission errors.
var (
	// ErrShuttingDown rejects submissions during graceful shutdown.
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrQueueFull rejects submissions beyond the queue bound.
	ErrQueueFull = errors.New("serve: job queue full")
)

// ProgressInfo is the most recent GA telemetry of a running job.
type ProgressInfo struct {
	Gen   int     `json:"gen"`
	Evals int     `json:"evals"`
	Best  float64 `json:"best"`
}

// SimSummary is the wire form of a step-simulator run.
type SimSummary struct {
	Completed        bool    `json:"completed"`
	E2ELatencyS      float64 `json:"e2e_latency_s"`
	ActiveTimeS      float64 `json:"active_time_s"`
	PowerCycles      int     `json:"power_cycles"`
	Checkpoints      int     `json:"checkpoints"`
	Resumes          int     `json:"resumes"`
	TileRetries      int     `json:"tile_retries"`
	TilesDone        int     `json:"tiles_done"`
	SystemEfficiency float64 `json:"system_efficiency"`
}

func simSummary(r sim.Result) SimSummary {
	return SimSummary{
		Completed:        r.Completed,
		E2ELatencyS:      float64(r.E2ELatency),
		ActiveTimeS:      float64(r.ActiveTime),
		PowerCycles:      r.PowerCycles,
		Checkpoints:      r.Checkpoints,
		Resumes:          r.Resumes,
		TileRetries:      r.TileRetries,
		TilesDone:        r.TilesDone,
		SystemEfficiency: r.SystemEfficiency,
	}
}

// JobStatus is the wire form of a job (POST/GET /v1/designs responses
// and the terminal SSE "done" event).
type JobStatus struct {
	ID        string        `json:"id"`
	Key       string        `json:"key"`
	State     JobState      `json:"state"`
	Cached    bool          `json:"cached"`
	CreatedAt time.Time     `json:"created_at"`
	StartedAt *time.Time    `json:"started_at,omitempty"`
	DoneAt    *time.Time    `json:"done_at,omitempty"`
	Error     string        `json:"error,omitempty"`
	Progress  *ProgressInfo `json:"progress,omitempty"`
	// Workers is the search-evaluation concurrency granted to this job
	// by the process-global worker gate (informational; results are
	// bit-identical for any worker count).
	Workers int           `json:"workers,omitempty"`
	Result  *core.Result  `json:"result,omitempty"`
	Verify  *SimSummary   `json:"verify,omitempty"`
	Audit   *audit.Report `json:"audit,omitempty"`
}

// job is one design-search unit of work.
type job struct {
	id string
	js jobSpec

	mu       sync.Mutex
	state    JobState
	cached   bool
	workers  int
	err      string
	result   *core.Result
	verify   *SimSummary
	rec      *sim.Recorder
	audit    *audit.Report
	created  time.Time
	started  time.Time
	finished time.Time
	progress *ProgressInfo
	// quality accumulates the live per-generation search telemetry,
	// already JSON-sanitized; the convergence endpoint serves it while
	// the job runs and falls back to Result.Quality once it is done.
	quality search.QualityHistory
	cancel  context.CancelFunc

	stream *stream
	trace  *obs.Trace
	done   chan struct{}

	// timeline accumulates the job's completed phases (admission, queue
	// wait, search, …) for the timeline endpoint; remote holds the owner
	// node's trace segment when the job was delegated. Both under mu.
	timeline []timelinePhase
	remote   *remoteSegment
}

// status snapshots the job for the wire.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		Key:       j.js.key,
		State:     j.state,
		Cached:    j.cached,
		CreatedAt: j.created,
		Error:     j.err,
		Workers:   j.workers,
		Result:    j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.DoneAt = &t
	}
	if j.progress != nil {
		p := *j.progress
		st.Progress = &p
	}
	if j.verify != nil {
		s := *j.verify
		st.Verify = &s
	}
	st.Audit = j.audit
	return st
}

// recorder returns the job's flight recorder, if the job carries one.
// The recorder is safe to snapshot while the verify replay is running —
// the waveform endpoint and the dashboard read it live.
func (j *job) recorder() *sim.Recorder {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec
}

// manager owns the job table, the single-flight index, the result
// cache, the worker pool and, when configured, the WAL journal and the
// cluster peer client.
type manager struct {
	opts Options
	met  *metrics

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // insertion order, for pruning finished records
	inflight map[string]*job
	nextID   int64
	closed   bool

	cache   *lruCache
	queue   chan *job
	gate    *workerGate
	wg      sync.WaitGroup
	journal *journal           // nil = in-memory only
	cluster *cluster.Client    // nil = single-node
	adm     *admission         // nil = no per-client quotas
	warm    *explore.WarmCache // nil = warm tier disabled

	baseCtx    context.Context
	baseCancel context.CancelFunc
}

func newManager(opts Options) (*manager, error) {
	ctx, cancel := context.WithCancel(context.Background())
	m := &manager{
		opts:       opts,
		met:        newMetrics(),
		jobs:       make(map[string]*job),
		inflight:   make(map[string]*job),
		cache:      newLRU(opts.CacheSize),
		gate:       newWorkerGate(runtime.GOMAXPROCS(0) - opts.Workers),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	m.met.slo = obs.NewSLO(opts.SLOLatency.Seconds(), opts.SLOObjective)
	m.met.slo.Register(m.met.reg, "chrysalisd_job")
	if opts.WarmCacheMB > 0 {
		m.warm = explore.NewWarmCache(int64(opts.WarmCacheMB) << 20)
		m.met.registerWarm(m.warm)
	}
	if opts.QuotaRPS > 0 {
		m.adm = newAdmission(opts.QuotaRPS, opts.QuotaBurst)
	}
	if len(opts.Peers) > 0 {
		hops := m.met.reg.HistogramVec("chrysalisd_cluster_hop_seconds",
			"Latency of completed peer exchanges (probes, delegations, polls), by peer.",
			nil, "peer")
		transitions := m.met.reg.CounterVec("chrysalisd_cluster_breaker_transitions_total",
			"Circuit-breaker state transitions, by peer and new state.",
			"peer", "state")
		cl, err := cluster.New(cluster.Options{
			Self:    opts.Self,
			Peers:   opts.Peers,
			Timeout: opts.ClusterTimeout,
			OnHop: func(peer string, seconds float64) {
				hops.With(peer).Observe(seconds)
			},
			OnBreaker: func(peer string, open bool) {
				state := "closed"
				if open {
					state = "open"
				}
				transitions.With(peer, state).Inc()
			},
		})
		if err != nil {
			cancel()
			return nil, err
		}
		m.cluster = cl
		m.met.reg.GaugeSampleFunc("chrysalisd_cluster_breaker_open",
			"Whether each remote peer's circuit breaker is currently open (1) or closed (0).",
			[]string{"peer"}, func() []obs.LabeledValue {
				states := cl.PeerStates()
				out := make([]obs.LabeledValue, 0, len(states))
				for _, ps := range states {
					v := int64(0)
					if ps.Open {
						v = 1
					}
					out = append(out, obs.LabeledValue{Labels: []string{ps.Peer}, Value: v})
				}
				return out
			})
	}

	// Recover the job table from the WAL before the queue exists and the
	// workers start, so recovered pending jobs run before any new ones.
	var recovered []*recoveredJob
	if opts.WALDir != "" {
		jn, recs, next, err := openJournal(opts.WALDir, opts.Logger)
		if err != nil {
			cancel()
			return nil, err
		}
		m.journal = jn
		m.nextID = next
		recovered = recs
		m.registerWALMetrics()
	}
	pending := 0
	for _, r := range recovered {
		if !r.state.terminal() {
			pending++
		}
	}
	depth := opts.QueueDepth
	if pending > depth {
		depth = pending // recovery never drops jobs to the queue bound
	}
	m.queue = make(chan *job, depth)
	m.adopt(recovered)

	m.met.reg.GaugeFunc("chrysalisd_cache_entries",
		"Designs currently held by the result cache.",
		func() int64 { return int64(m.cache.len()) })
	m.met.reg.GaugeFunc("chrysalisd_job_records",
		"Job records currently retained.",
		func() int64 { return int64(m.jobCount()) })
	m.met.reg.GaugeFunc("chrysalisd_search_worker_slots",
		"Extra search-worker slots available beyond the job pool (GOMAXPROCS - pool width).",
		func() int64 { return int64(m.gate.cap()) })
	m.met.reg.GaugeFunc("chrysalisd_search_worker_slots_in_use",
		"Extra search-worker slots currently held by running jobs.",
		func() int64 { return int64(m.gate.inUse()) })
	m.met.reg.GaugeFunc("chrysalisd_queue_depth",
		"Design jobs waiting in the queue right now.",
		func() int64 { return int64(len(m.queue)) })
	m.met.reg.GaugeFloatSampleFunc("chrysalis_search_best_objective",
		"Most recent per-generation best objective of each running search.",
		[]string{"job"}, m.searchGauge(func(q search.GenQuality) (float64, bool) {
			return q.Best, true
		}))
	m.met.reg.GaugeFloatSampleFunc("chrysalis_search_hypervolume",
		"Most recent dominated hypervolume of each running Pareto search.",
		[]string{"job"}, m.searchGauge(func(q search.GenQuality) (float64, bool) {
			return q.Hypervolume, q.FrontSize > 0
		}))
	if m.adm != nil {
		m.met.reg.GaugeSampleFunc("chrysalisd_quota_tokens_remaining",
			"Admission tokens currently available per client (token bucket).",
			[]string{"client"}, m.adm.remaining)
	}
	if m.cluster != nil {
		m.met.reg.CounterFunc("chrysalisd_cluster_remote_hits_total",
			"Designs served from a peer's result cache.",
			func() int64 { return m.cluster.Stats().RemoteHits })
		m.met.reg.CounterFunc("chrysalisd_cluster_remote_misses_total",
			"Owner cache probes that missed and became delegated evaluations.",
			func() int64 { return m.cluster.Stats().RemoteMisses })
		m.met.reg.CounterFunc("chrysalisd_cluster_peer_errors_total",
			"Failed peer calls (timeouts, refused connections, bad statuses).",
			func() int64 { return m.cluster.Stats().PeerErrors })
		m.met.reg.CounterFunc("chrysalisd_cluster_fallbacks_total",
			"Evaluations run locally although a peer owned the key (degraded mode).",
			func() int64 { return m.cluster.Stats().Fallbacks })
		m.met.reg.GaugeFunc("chrysalisd_cluster_peers_up",
			"Remote peers whose circuit breaker is currently closed.",
			func() int64 { return int64(m.cluster.PeersUp()) })
	}
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// searchGauge samples one field of every running job's most recent
// quality record, labeled by job ID. The field func reports whether the
// sample applies to the job (e.g. hypervolume only for Pareto runs).
func (m *manager) searchGauge(field func(search.GenQuality) (float64, bool)) func() []obs.LabeledFloat {
	return func() []obs.LabeledFloat {
		m.mu.Lock()
		jobs := make([]*job, 0, len(m.jobs))
		for _, id := range m.order {
			if j, ok := m.jobs[id]; ok {
				jobs = append(jobs, j)
			}
		}
		m.mu.Unlock()
		var out []obs.LabeledFloat
		for _, j := range jobs {
			j.mu.Lock()
			var q search.GenQuality
			sample := j.state == JobRunning && len(j.quality) > 0
			if sample {
				q = j.quality[len(j.quality)-1]
			}
			j.mu.Unlock()
			if !sample {
				continue
			}
			if v, ok := field(q); ok {
				out = append(out, obs.LabeledFloat{Labels: []string{j.id}, Value: v})
			}
		}
		return out
	}
}

// adopt installs WAL-recovered jobs: terminal records become finished
// job history (done ones re-seed the result cache), pending ones are
// re-enqueued exactly as if just submitted. Runs before the workers
// start; the manager lock is not yet contended.
func (m *manager) adopt(recovered []*recoveredJob) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range recovered {
		js, err := normalize(r.req)
		if err != nil {
			// A record that no longer normalizes (e.g. a workload removed
			// from the catalog) is dropped loudly, not fatally.
			m.opts.Logger.Warn("wal: dropping unrecoverable job", "job", r.id, "error", err)
			continue
		}
		j := &job{
			id:      r.id,
			js:      js,
			state:   r.state,
			created: time.Now(),
			stream:  newStream(),
			trace:   obs.NewTrace(m.opts.TraceEvents),
			done:    make(chan struct{}),
		}
		// The original submission's trace identity did not survive the
		// crash; the recovered run gets a fresh root.
		j.trace.SetContext(obs.NewTraceContext())
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		if n := jobSeq(r.id); n > m.nextID {
			m.nextID = n
		}
		if r.state.terminal() {
			now := time.Now()
			j.started, j.finished = now, now
			j.err = r.err
			j.result = r.result
			j.verify = r.verify
			j.audit = r.audit
			if r.state == JobDone && r.result != nil {
				m.cache.add(js.key, cacheEntry{result: *r.result, verify: r.verify, audit: r.audit})
			}
			j.stream.publish("done", j.status())
			j.stream.close()
			close(j.done)
			continue
		}
		// Queued or running at crash time: both restart from the queue.
		j.state = JobQueued
		m.inflight[js.key] = j
		m.queue <- j // queue is sized to hold every recovered pending job
		m.met.jobsQueued.Inc()
		m.met.jobsRecovered.Inc()
		j.stream.publish("state", map[string]string{"state": string(JobQueued)})
	}
	m.pruneLocked()
}

// submit deduplicates, caches or enqueues a design request. reused is
// true when no new search was started (in-flight coalescing or a cache
// hit).
func (m *manager) submit(js jobSpec) (j *job, reused bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrShuttingDown
	}
	// Single-flight: identical requests share the in-flight job.
	if cur, ok := m.inflight[js.key]; ok {
		m.met.cacheHits.Inc()
		return cur, true, nil
	}
	// Content-addressed cache: finished identical requests skip the
	// search entirely and materialize as an already-done job record.
	if entry, ok := m.cache.get(js.key); ok {
		m.met.cacheHits.Inc()
		j = m.newJobLocked(js)
		now := time.Now()
		j.state = JobDone
		j.cached = true
		res := entry.result
		j.result = &res
		j.verify = entry.verify
		j.rec = entry.rec
		j.audit = entry.audit
		j.started, j.finished = now, now
		j.stream.publish("done", j.status())
		j.stream.close()
		close(j.done)
		return j, true, nil
	}
	m.met.cacheMisses.Inc()
	j = m.newJobLocked(js)
	select {
	case m.queue <- j:
	default:
		delete(m.jobs, j.id)
		m.order = m.order[:len(m.order)-1]
		return nil, false, ErrQueueFull
	}
	m.inflight[js.key] = j
	m.met.jobsQueued.Inc()
	m.journalLocked(walRecord{Op: opSubmit, ID: j.id, Req: &js.req})
	j.stream.publish("state", map[string]string{"state": string(JobQueued)})
	return j, false, nil
}

// journalLocked appends one WAL record and, past the compaction
// threshold, snapshots the whole job table. m.mu must be held — that is
// what makes the collected snapshot consistent with the log position.
func (m *manager) journalLocked(rec walRecord) {
	if m.journal == nil {
		return
	}
	m.journal.append(rec)
	if m.journal.records() < snapshotEvery {
		return
	}
	snap := walSnapshot{NextID: m.nextID}
	for _, id := range m.order {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		snap.Jobs = append(snap.Jobs, j.walRecord())
	}
	m.journal.snapshot(snap)
}

// newJobLocked allocates and registers a job record; m.mu must be held.
// The job's trace identity is assigned here, before any worker can see
// the job: a child of the submitting request's context when it carried
// one, a fresh root otherwise.
func (m *manager) newJobLocked(js jobSpec) *job {
	m.nextID++
	j := &job{
		id:      fmt.Sprintf("j-%06d", m.nextID),
		js:      js,
		state:   JobQueued,
		created: time.Now(),
		stream:  newStream(),
		trace:   obs.NewTrace(m.opts.TraceEvents),
		done:    make(chan struct{}),
	}
	if js.tc.Valid() {
		j.trace.SetContext(js.tc.Child())
	} else {
		j.trace.SetContext(obs.NewTraceContext())
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.pruneLocked()
	return j
}

// pruneLocked evicts the oldest finished job records beyond MaxJobs.
func (m *manager) pruneLocked() {
	if len(m.jobs) <= m.opts.MaxJobs {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		j.mu.Lock()
		prunable := j.state.terminal()
		j.mu.Unlock()
		if prunable && len(m.jobs) > m.opts.MaxJobs {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// get looks up a job by ID.
func (m *manager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// jobCount reports retained job records.
func (m *manager) jobCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// cancelJob cancels a queued or running job. It reports whether the
// job existed; cancelling a terminal job is a no-op.
func (m *manager) cancelJob(id string) bool {
	j, ok := m.get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	switch j.state {
	case JobQueued:
		// The worker will observe the terminal state and skip the run.
		j.mu.Unlock()
		m.finish(j, JobCancelled, errors.New("cancelled by client"))
		return true
	case JobRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		j.mu.Unlock()
		return true
	}
}

// worker drains the queue until close.
func (m *manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// run executes one job: the GA search with live progress telemetry,
// then (for verify jobs) a traced step-simulator replay.
func (m *manager) run(j *job) {
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if m.opts.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx, m.opts.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(m.baseCtx)
	}
	defer cancel()

	j.mu.Lock()
	if j.state != JobQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.mu.Unlock()

	m.met.jobsRunning.Add(1)
	defer m.met.jobsRunning.Add(-1)
	j.stream.publish("state", map[string]string{"state": string(JobRunning)})

	// Tag this worker goroutine with the job ID so CPU and goroutine
	// profiles attribute pipeline work to the job that caused it; the
	// search inherits the labels (plus its own phase) via the config.
	lctx := pprof.WithLabels(ctx, pprof.Labels("job", j.id))
	pprof.SetGoroutineLabels(lctx)
	defer pprof.SetGoroutineLabels(ctx)

	m.addPhase(j, "queue-wait", j.created, j.started)

	// Cluster path: when a peer owns this design's key, probe its cache
	// and delegate the evaluation to it. Any peer failure falls through
	// to the local path below — degradation is never user-visible.
	if m.runRemote(ctx, j) {
		return
	}

	// Size the job's search concurrency: the job's own pool slot plus
	// whatever slack the worker gate can grant toward the requested
	// width (request's search_workers, falling back to the server
	// default, falling back to GOMAXPROCS). Zero grant means a serial
	// search — never a queued one.
	want := j.js.searchWorkers
	if want <= 0 {
		want = m.opts.SearchWorkers
	}
	if want <= 0 {
		want = runtime.GOMAXPROCS(0)
	}
	granted := m.gate.tryAcquire(want - 1)
	workers := 1 + granted
	defer func() {
		if granted > 0 {
			m.gate.release(granted)
		}
	}()

	j.mu.Lock()
	j.workers = workers
	spec := j.js.spec
	spec.Search.Workers = workers
	j.mu.Unlock()

	spec.Search.Trace = j.trace
	spec.Search.Warm = m.warm
	spec.Search.Labels = pprof.WithLabels(lctx, pprof.Labels("phase", "search"))
	spec.Search.Progress = func(gen, evals int, best float64) {
		p := ProgressInfo{Gen: gen, Evals: evals, Best: best}
		j.mu.Lock()
		j.progress = &p
		j.mu.Unlock()
		j.stream.publish("progress", p)
	}
	spec.Search.Stop = func() bool { return ctx.Err() != nil }
	spec.Search.OnQuality = func(q search.GenQuality) {
		// Sanitize before storing: the record rides SSE and the
		// convergence endpoint, both of which marshal with encoding/json
		// (which rejects the +Inf an all-infeasible generation carries).
		sq := q.SanitizeJSON()
		j.mu.Lock()
		j.quality = append(j.quality, sq)
		j.mu.Unlock()
		j.stream.publish("quality", sq)
		m.met.searchGenerations.Inc()
		if q.Stagnation > 0 {
			m.met.stagnantGens.Inc()
		}
	}

	m.met.evaluations.Inc()
	searchStart := time.Now()
	res, err := core.RunBaseline(spec, j.js.baseline)
	m.addPhase(j, "search", searchStart, time.Now(), obs.A("workers", workers))
	// The search is over: hand the extra slots back before the (serial)
	// verify replay so queued jobs can fan out while this one replays.
	if granted > 0 {
		m.gate.release(granted)
		granted = 0
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		if errors.Is(ctxErr, context.DeadlineExceeded) {
			m.finish(j, JobFailed, fmt.Errorf("job exceeded timeout %v", m.opts.JobTimeout))
		} else {
			m.finish(j, JobCancelled, errors.New("cancelled"))
		}
		return
	}
	if err != nil {
		m.finish(j, JobFailed, err)
		return
	}

	if res.StoppedEarly {
		m.met.searchEarlyStops.Inc()
	}
	j.mu.Lock()
	j.result = &res
	j.mu.Unlock()

	if j.js.verify {
		// Replay on the step simulator with a flight recorder attached,
		// streaming a bounded prefix of its events (the rest are
		// summarized by the drop count) while the trace adapter maps the
		// full stream onto Perfetto slices. The recorder is published on
		// the job before the replay starts so the waveform endpoint and
		// the dashboard can snapshot it mid-flight.
		rec := sim.NewRecorder(0)
		j.mu.Lock()
		j.rec = rec
		j.mu.Unlock()
		pprof.SetGoroutineLabels(pprof.WithLabels(lctx, pprof.Labels("phase", "sim")))
		simStart := time.Now()
		published := 0
		dropped := 0
		adapter := sim.TraceTo(j.trace)
		simRes, auditRep, verr := core.VerifyFlight(spec, res, func(e sim.Event) {
			adapter.Trace(e)
			if published >= maxStreamHistory/2 {
				dropped++
				return
			}
			published++
			j.stream.publish("sim", map[string]any{
				"kind":      e.Kind.String(),
				"time_s":    float64(e.Time),
				"tile":      e.Tile,
				"layer":     e.Layer,
				"voltage_v": float64(e.Voltage),
			})
		}, rec)
		adapter.Close()
		m.addPhase(j, "sim", simStart, time.Now())
		if verr != nil {
			m.finish(j, JobFailed, fmt.Errorf("verify replay: %w", verr))
			return
		}
		if dropped > 0 {
			j.stream.publish("sim-truncated", map[string]int{"dropped": dropped})
		}
		sum := simSummary(simRes)
		j.mu.Lock()
		j.verify = &sum
		j.audit = auditRep
		j.mu.Unlock()
		// Publish the physics verdict on the stream: dashboards and SSE
		// clients learn whether energy conservation held without polling.
		j.stream.publish("audit", auditRep)
	}
	m.finish(j, JobDone, nil)
}

// finish moves a job to a terminal state, updates the single-flight
// index, the result cache and the metrics, and closes the telemetry
// stream.
func (m *manager) finish(j *job, state JobState, err error) {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.finished = time.Now()
	if err != nil {
		j.err = err.Error()
	}
	var latency float64
	if !j.started.IsZero() {
		latency = j.finished.Sub(j.started).Seconds()
	}
	var entry *cacheEntry
	if state == JobDone && j.result != nil {
		entry = &cacheEntry{result: *j.result, verify: j.verify, rec: j.rec, audit: j.audit}
	}
	rec := j.walRecordLocked()
	j.mu.Unlock()

	m.mu.Lock()
	if m.inflight[j.js.key] == j {
		delete(m.inflight, j.js.key)
	}
	journalStart := time.Now()
	m.journalLocked(rec)
	journalEnd := time.Now()
	m.mu.Unlock()
	if m.journal != nil {
		// Terminal records fsync, so the journal write is a real phase of
		// the job's life worth seeing on its timeline.
		m.addPhase(j, "wal-journal", journalStart, journalEnd)
	}

	switch state {
	case JobDone:
		if entry != nil {
			m.cache.add(j.js.key, *entry)
		}
		m.met.jobsDone.Inc()
		m.met.observeLatency(latency)
	case JobFailed:
		m.met.jobsFailed.Inc()
		m.met.observeLatency(latency)
	case JobCancelled:
		m.met.jobsCancelled.Inc()
	}
	attrs := []slog.Attr{
		slog.String("job", j.id),
		slog.String("state", string(state)),
		slog.Float64("latency_s", latency),
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	m.opts.Logger.LogAttrs(context.Background(), slog.LevelInfo, "job finished", attrs...)
	j.stream.publish("done", j.status())
	j.stream.close()
	close(j.done)
}

// close stops accepting submissions and drains queued and running jobs.
// If ctx expires first, outstanding jobs are cancelled via the base
// context and close returns ctx.Err() after the workers exit.
func (m *manager) close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
		m.baseCancel()
	case <-ctx.Done():
		m.baseCancel() // force-cancel in-flight searches
		<-drained
		err = ctx.Err()
	}
	if m.journal != nil {
		m.journal.close()
	}
	return err
}
