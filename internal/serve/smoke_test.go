package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end smoke check behind `make
// serve-smoke`: it boots the daemon on a random localhost port exactly
// as cmd/chrysalisd does (a real net.Listener, not httptest), submits a
// small-budget design job, polls it to completion, resubmits the
// identical request and asserts the cache-hit counter incremented while
// no second search ran.
func TestServeSmoke(t *testing.T) {
	srv, err := New(Options{Workers: 2, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})

	// The daemon is alive.
	if code := getJSON(t, base+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}

	// Submit a small-budget design job and poll to completion.
	resp, body := postJSON(t, base+"/v1/designs", smallJob())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, base, st.ID)
	if final.State != JobDone || final.Result == nil {
		t.Fatalf("job state %s (%s)", final.State, final.Error)
	}

	hitsBefore := metricValue(t, base, "chrysalisd_cache_hits_total")

	// Resubmitting the identical request must be a cache hit, not a
	// second search.
	resp2, body2 := postJSON(t, base+"/v1/designs", smallJob())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", resp2.StatusCode, body2)
	}
	var st2 JobStatus
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != JobDone {
		t.Fatalf("resubmit not served from cache: %s", body2)
	}
	if hits := metricValue(t, base, "chrysalisd_cache_hits_total"); hits != hitsBefore+1 {
		t.Errorf("cache hits = %g, want %g", hits, hitsBefore+1)
	}
	if queued := metricValue(t, base, "chrysalisd_jobs_queued_total"); queued != 1 {
		t.Errorf("jobs queued = %g, want 1 (no second search)", queued)
	}
}
