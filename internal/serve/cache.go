package serve

import (
	"container/list"
	"sync"

	"chrysalis/internal/audit"
	"chrysalis/internal/core"
	"chrysalis/internal/sim"
)

// cacheEntry is a finished design: the search result plus, for verify
// jobs, the step-simulator replay summary, the flight recording and the
// energy-conservation audit (so cache hits still serve waveforms).
// Everything except the recorder is JSON-serializable, so entries
// survive WAL recovery and travel between cluster peers; waveforms are
// a local, best-effort extra.
type cacheEntry struct {
	result core.Result
	verify *SimSummary
	rec    *sim.Recorder
	audit  *audit.Report
}

// lruCache is a content-addressed result cache: keys are canonical
// request hashes (see normalize), values finished designs. Least
// recently used entries are evicted once cap is exceeded.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruItem struct {
	key   string
	entry cacheEntry
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the entry for key, promoting it to most recently used.
func (c *lruCache) get(key string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return cacheEntry{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// add inserts or refreshes an entry, evicting the least recently used
// entries beyond capacity.
func (c *lruCache) add(key string, e cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruItem).entry = e
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, entry: e})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruItem).key)
	}
}

// len reports the number of cached designs.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
