package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSSEConcurrentSubscribers drives one publisher against several
// draining subscribers plus one that never reads. The publisher must
// finish promptly (the stalled subscriber loses events instead of
// blocking anyone) and every draining subscriber must observe the
// published sequence complete and in order.
func TestSSEConcurrentSubscribers(t *testing.T) {
	s := newStream()
	const events = 200
	const readers = 8

	var wg sync.WaitGroup
	results := make([][]string, readers)
	for i := 0; i < readers; i++ {
		ch, cancel := s.subscribe()
		defer cancel()
		wg.Add(1)
		go func(i int, ch <-chan sseEvent) {
			defer wg.Done()
			for ev := range ch {
				results[i] = append(results[i], ev.name)
			}
		}(i, ch)
	}
	// The stalled subscriber holds its channel without ever draining it.
	stalled, cancelStalled := s.subscribe()
	defer cancelStalled()

	published := make(chan struct{})
	go func() {
		defer close(published)
		for i := 0; i < events; i++ {
			s.publish(fmt.Sprintf("e%03d", i), i)
		}
		s.close()
	}()
	select {
	case <-published:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked by a stalled subscriber")
	}
	wg.Wait()

	for i, names := range results {
		if len(names) != events {
			t.Fatalf("subscriber %d received %d/%d events", i, len(names), events)
		}
		for j, name := range names {
			if want := fmt.Sprintf("e%03d", j); name != want {
				t.Fatalf("subscriber %d event %d = %s, want %s (ordering broken)", i, j, name, want)
			}
		}
	}
	// The stalled channel kept at most its buffer; the rest were dropped
	// rather than queued unboundedly.
	if n := len(stalled); n > events {
		t.Fatalf("stalled subscriber buffered %d events", n)
	}
}

// TestSSEStalledClientDoesNotBlockJob opens a raw TCP connection to the
// events endpoint of a running verify job and never reads from it; the
// job must still reach a terminal state.
func TestSSEStalledClientDoesNotBlockJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := smallJob()
	req.Verify = true

	resp, body := postJSON(t, ts.URL+"/v1/designs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/designs/%s/events HTTP/1.1\r\nHost: test\r\nAccept: text/event-stream\r\n\r\n", st.ID)
	// Deliberately never read from conn.

	final := pollJob(t, ts.URL, st.ID)
	if final.State != JobDone {
		t.Fatalf("job state %s (%s) with a stalled SSE client", final.State, final.Error)
	}
}

// traceResponse mirrors the Chrome trace-event envelope for assertions.
type traceResponse struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceEndpoint completes a verify job and asserts its trace export
// is Perfetto-loadable JSON containing the search's per-generation
// spans and the simulator's power-cycle, tile and checkpoint slices,
// on both route spellings.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := smallJob()
	req.Verify = true

	resp, body := postJSON(t, ts.URL+"/v1/designs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if final := pollJob(t, ts.URL, st.ID); final.State != JobDone {
		t.Fatalf("job state %s (%s)", final.State, final.Error)
	}

	for _, path := range []string{"/v1/designs/" + st.ID + "/trace", "/jobs/" + st.ID + "/trace"} {
		hresp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if hresp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, hresp.StatusCode)
		}
		if ct := hresp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s content type %q", path, ct)
		}
		var tr traceResponse
		if err := json.NewDecoder(hresp.Body).Decode(&tr); err != nil {
			t.Fatalf("GET %s: invalid trace JSON: %v", path, err)
		}
		hresp.Body.Close()
		if len(tr.TraceEvents) == 0 {
			t.Fatalf("GET %s: empty trace", path)
		}

		var genSpans, powered, tiles, ckpt int
		lastTS := -1.0
		for i, ev := range tr.TraceEvents {
			if ev.Ph != "M" {
				if ev.TS < lastTS {
					t.Fatalf("event %d (%s) out of order", i, ev.Name)
				}
				lastTS = ev.TS
			}
			switch {
			case strings.HasPrefix(ev.Name, "generation "):
				genSpans++
			case ev.Name == "powered":
				powered++
			case strings.HasPrefix(ev.Name, "L") && strings.Contains(ev.Name, " tile "):
				tiles++
			case ev.Name == "checkpoint" || ev.Name == "resume" || ev.Name == "retry":
				ckpt++
			}
		}
		if genSpans == 0 {
			t.Errorf("GET %s: no search generation spans", path)
		}
		if powered == 0 {
			t.Errorf("GET %s: no sim power-cycle slices", path)
		}
		if tiles == 0 {
			t.Errorf("GET %s: no sim tile slices", path)
		}
		if ckpt == 0 {
			t.Errorf("GET %s: no sim checkpoint activity", path)
		}
	}

	// Unknown jobs are a 404 on the trace route too.
	r, err := http.Get(ts.URL + "/v1/designs/j-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("trace for unknown job: %d", r.StatusCode)
	}
}

// TestMetricsHistogramAndRequests asserts /metrics exposes the
// histogram form of the job latency (cumulative le buckets, _sum,
// _count) and the HTTP request families added by the middleware.
func TestMetricsHistogramAndRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	resp, body := postJSON(t, ts.URL+"/v1/designs", smallJob())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if final := pollJob(t, ts.URL, st.ID); final.State != JobDone {
		t.Fatalf("job state %s (%s)", final.State, final.Error)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	page := readAll(t, mresp)

	for _, want := range []string{
		"# TYPE chrysalisd_job_latency_seconds histogram",
		`chrysalisd_job_latency_seconds_bucket{le="+Inf"} 1`,
		"chrysalisd_job_latency_seconds_sum",
		"chrysalisd_job_latency_seconds_count 1",
		"# TYPE chrysalisd_http_requests_total counter",
		`chrysalisd_http_requests_total{method="GET",code="200"}`,
		"# TYPE chrysalisd_http_request_seconds histogram",
		"chrysalisd_evaluator_cache_hits_total",
		"chrysalisd_cache_entries",
		"chrysalisd_job_records",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}
