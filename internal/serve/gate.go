package serve

import "sync"

// workerGate is a weighted semaphore over the server's spare CPU slots,
// shared by every job the pool runs. The job pool itself is sized to
// GOMAXPROCS, so with every pool slot busy there is no headroom for
// intra-job search parallelism: the gate's capacity is the slack left
// after the pool's own width (max(0, GOMAXPROCS − pool width)), and a
// job's search may only fan out across slots it actually acquired.
// Acquisition is non-blocking by design — a job that finds no spare
// slots runs its search serially rather than waiting, so the pool's
// throughput is never sacrificed to one job's speedup and the total
// search-worker count across the process never exceeds GOMAXPROCS.
type workerGate struct {
	mu       sync.Mutex
	capacity int
	free     int
}

func newWorkerGate(capacity int) *workerGate {
	if capacity < 0 {
		capacity = 0
	}
	return &workerGate{capacity: capacity, free: capacity}
}

// tryAcquire grabs up to want slots without blocking and returns how
// many it got (possibly zero). want <= 0 acquires nothing.
func (g *workerGate) tryAcquire(want int) int {
	if want <= 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	got := want
	if got > g.free {
		got = g.free
	}
	g.free -= got
	return got
}

// release returns n slots to the gate.
func (g *workerGate) release(n int) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.free += n
	if g.free > g.capacity {
		g.free = g.capacity
	}
}

// inUse reports currently held slots (for metrics).
func (g *workerGate) inUse() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.capacity - g.free
}

// cap reports the gate's total capacity (for metrics).
func (g *workerGate) cap() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.capacity
}
