package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testWriter routes slog output into the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// testLogger builds a debug-level structured logger bound to t.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{t: t}, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// newTestServer builds a Server plus an httptest front end; both are
// torn down with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// smallJob is a fast design request for tests.
func smallJob() DesignRequest {
	return DesignRequest{Workload: "har", Budget: 60, Seed: 7}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// pollJob fetches the job until it reaches a terminal state.
func pollJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, base+"/v1/designs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET job: status %d", code)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("parse metric %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

func TestHealthWorkloadsPresets(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz payload: %v", health)
	}

	var workloads []WorkloadInfo
	if code := getJSON(t, ts.URL+"/v1/workloads", &workloads); code != http.StatusOK {
		t.Fatalf("workloads: %d", code)
	}
	if len(workloads) == 0 {
		t.Fatal("no workloads listed")
	}
	seen := false
	for _, w := range workloads {
		if w.Name == "har" && w.Layers > 0 {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("har missing from %v", workloads)
	}

	var presets []PresetInfo
	if code := getJSON(t, ts.URL+"/v1/presets", &presets); code != http.StatusOK {
		t.Fatalf("presets: %d", code)
	}
	if len(presets) == 0 {
		t.Fatal("no presets listed")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []DesignRequest{
		{Workload: "no-such-net"},
		{Platform: "riscv"},
		{Objective: "speed"},
		{Baseline: "wo/Everything"},
		{Budget: -5},
		{MaxPanelCM2: -1},
		{MaxLatencyS: -1},
		{Algorithm: "annealing"},
		{WorkloadJSON: json.RawMessage(`{"name":"x","input":[0,0,0],"layers":[]}`)},
	}
	for i, req := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/designs", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d body %s", i, resp.StatusCode, body)
		}
	}
	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/designs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d", resp.StatusCode)
	}
}

func TestDesignJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	resp, body := postJSON(t, ts.URL+"/v1/designs", smallJob())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Key == "" {
		t.Fatalf("submit response missing id/key: %s", body)
	}

	final := pollJob(t, ts.URL, st.ID)
	if final.State != JobDone {
		t.Fatalf("job state %s (error %q)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.PanelArea <= 0 || final.Result.AvgLatency <= 0 {
		t.Fatalf("implausible result: %+v", final.Result)
	}
	if final.Progress == nil || final.Progress.Gen < 1 || final.Progress.Evals < 1 {
		t.Fatalf("missing progress telemetry: %+v", final.Progress)
	}

	// Identical resubmission must be served from the cache: same key, no
	// second search, HTTP 200 (not 202), cached flag set.
	resp2, body2 := postJSON(t, ts.URL+"/v1/designs", smallJob())
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: status %d body %s", resp2.StatusCode, body2)
	}
	var st2 JobStatus
	if err := json.Unmarshal(body2, &st2); err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != JobDone || st2.Key != st.Key {
		t.Fatalf("resubmit not a cache hit: %s", body2)
	}
	if st2.Result == nil || st2.Result.AvgLatency != final.Result.AvgLatency {
		t.Fatal("cached result differs from original")
	}

	if hits := metricValue(t, ts.URL, "chrysalisd_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %g, want 1", hits)
	}
	if misses := metricValue(t, ts.URL, "chrysalisd_cache_misses_total"); misses != 1 {
		t.Errorf("cache misses = %g, want 1", misses)
	}
	if done := metricValue(t, ts.URL, "chrysalisd_jobs_done_total"); done != 1 {
		t.Errorf("jobs done = %g, want 1", done)
	}
	if queued := metricValue(t, ts.URL, "chrysalisd_jobs_queued_total"); queued != 1 {
		t.Errorf("jobs queued = %g, want 1", queued)
	}
	if n := metricValue(t, ts.URL, "chrysalisd_job_latency_seconds_count"); n != 1 {
		t.Errorf("latency count = %g, want 1", n)
	}
}

// TestEvaluatorCacheMetrics checks that the plan-ladder fingerprint
// cache counters from the evaluation engine surface on /metrics. The
// counters are process-wide, so the test asserts deltas around one
// search rather than absolute values.
func TestEvaluatorCacheMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	hits0 := metricValue(t, ts.URL, "chrysalisd_evaluator_cache_hits_total")
	misses0 := metricValue(t, ts.URL, "chrysalisd_evaluator_cache_misses_total")

	resp, body := postJSON(t, ts.URL+"/v1/designs", smallJob())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d body %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if final := pollJob(t, ts.URL, st.ID); final.State != JobDone {
		t.Fatalf("job state %s (error %q)", final.State, final.Error)
	}

	misses := metricValue(t, ts.URL, "chrysalisd_evaluator_cache_misses_total")
	if misses <= misses0 {
		t.Errorf("evaluator cache misses did not grow: %g -> %g", misses0, misses)
	}
	// On the MSP platform the hardware fingerprint is constant across
	// the outer search, so every evaluation after the first ladder
	// build is a hit.
	hits := metricValue(t, ts.URL, "chrysalisd_evaluator_cache_hits_total")
	if hits <= hits0 {
		t.Errorf("evaluator cache hits did not grow: %g -> %g", hits0, hits)
	}
}

// readSSE collects event names (and counts per name) from an SSE body.
func readSSE(t *testing.T, url string) map[string]int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	counts := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			counts[name]++
		}
	}
	return counts
}

func TestSSEProgressAndSimEvents(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := smallJob()
	req.Verify = true

	resp, body := postJSON(t, ts.URL+"/v1/designs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	// Stream while the job runs; the server closes the stream at the
	// terminal event, ending the read loop.
	counts := readSSE(t, ts.URL+"/v1/designs/"+st.ID+"/events")
	if counts["progress"] < 1 {
		t.Errorf("no progress events: %v", counts)
	}
	if counts["sim"] < 1 {
		t.Errorf("no sim events for a verify job: %v", counts)
	}
	if counts["done"] != 1 {
		t.Errorf("done events = %d, want 1: %v", counts["done"], counts)
	}

	final := pollJob(t, ts.URL, st.ID)
	if final.State != JobDone {
		t.Fatalf("state %s (%s)", final.State, final.Error)
	}
	if final.Verify == nil || !final.Verify.Completed {
		t.Fatalf("verify summary missing: %+v", final.Verify)
	}

	// A late subscriber replays the full history.
	replay := readSSE(t, ts.URL+"/v1/designs/"+st.ID+"/events")
	if replay["progress"] < 1 || replay["done"] != 1 {
		t.Errorf("late replay incomplete: %v", replay)
	}

	// Unknown job IDs are a 404.
	r2, err := http.Get(ts.URL + "/v1/designs/j-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("events for unknown job: %d", r2.StatusCode)
	}
}

func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, JobTimeout: time.Millisecond})
	// A heavyweight search (accelerator platform, deep workload, large
	// budget) that cannot finish inside the 1 ms deadline even with the
	// memoized evaluation engine.
	req := DesignRequest{Workload: "resnet18", Platform: "accel", Budget: 100000, Seed: 3}
	resp, body := postJSON(t, ts.URL+"/v1/designs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	final := pollJob(t, ts.URL, st.ID)
	if final.State != JobFailed || !strings.Contains(final.Error, "timeout") {
		t.Fatalf("state %s error %q, want failed timeout", final.State, final.Error)
	}
	if v := metricValue(t, ts.URL, "chrysalisd_jobs_failed_total"); v != 1 {
		t.Errorf("jobs failed = %g, want 1", v)
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := DesignRequest{Workload: "resnet18", Platform: "accel", Budget: 100000, Seed: 5}
	resp, body := postJSON(t, ts.URL+"/v1/designs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/designs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %d", dresp.StatusCode)
	}
	final := pollJob(t, ts.URL, st.ID)
	if final.State != JobCancelled {
		t.Fatalf("state %s, want cancelled", final.State)
	}
	// A cancelled key is not cached; resubmitting starts a fresh search.
	if v := metricValue(t, ts.URL, "chrysalisd_cache_entries"); v != 0 {
		t.Errorf("cache entries = %g, want 0", v)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	resp, body := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Workload: "har", PanelAreaCM2: 8, CapF: 100e-6,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp.StatusCode, body)
	}
	var sum SimSummary
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Completed || sum.E2ELatencyS <= 0 || sum.TilesDone <= 0 {
		t.Fatalf("implausible simulation: %+v", sum)
	}

	// Accelerator platform needs a full hardware description.
	resp2, _ := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Workload: "resnet18", Platform: "accel", PanelAreaCM2: 20, CapF: 1e-3,
	})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("accel without hw: %d", resp2.StatusCode)
	}
	resp3, body3 := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{
		Workload: "resnet18", Platform: "accel", PanelAreaCM2: 20, CapF: 1e-3,
		InferHW: "tpu", NPE: 64, CacheBytes: 512,
	})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("accel simulate: %d %s", resp3.StatusCode, body3)
	}

	// Bad input values.
	resp4, _ := postJSON(t, ts.URL+"/v1/simulate", SimulateRequest{Workload: "har"})
	if resp4.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero hardware: %d", resp4.StatusCode)
	}
}

func TestShutdownRejectsNewJobs(t *testing.T) {
	s, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/designs", smallJob())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: %d %s", resp.StatusCode, body)
	}
}

func TestCacheKeyCanonicalization(t *testing.T) {
	// Defaults applied explicitly or implicitly must hash identically.
	a, err := normalize(DesignRequest{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := normalize(DesignRequest{
		Workload: "har", Platform: "msp430", Objective: "lat*sp",
		Baseline: "chrysalis", Budget: 400, Seed: 1, Algorithm: "ga",
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.key != b.key {
		t.Error("default and explicit requests hash differently")
	}

	// Objective spelling variants normalize together.
	c, err := normalize(DesignRequest{Objective: "latsp"})
	if err != nil {
		t.Fatal(err)
	}
	if c.key != a.key {
		t.Error("latsp and lat*sp hash differently")
	}

	// Any identity field flips the key.
	for name, req := range map[string]DesignRequest{
		"seed":     {Seed: 2},
		"budget":   {Budget: 500},
		"workload": {Workload: "kws"},
		"verify":   {Verify: true},
		"baseline": {Baseline: "wo/EA"},
	} {
		d, err := normalize(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.key == a.key {
			t.Errorf("%s variant did not change the key", name)
		}
	}

	// Inline workloads hash by canonical serialization: whitespace and
	// field order do not matter.
	w1 := `{"name":"n","input":[1,1,16],"layers":[{"type":"dense","out":4}]}`
	w2 := "{\n  \"layers\": [ {\"out\": 4, \"type\": \"dense\"} ],\n  \"input\": [1, 1, 16],\n  \"name\": \"n\"\n}"
	j1, err := normalize(DesignRequest{WorkloadJSON: json.RawMessage(w1)})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := normalize(DesignRequest{WorkloadJSON: json.RawMessage(w2)})
	if err != nil {
		t.Fatal(err)
	}
	if j1.key != j2.key {
		t.Error("equivalent inline workloads hash differently")
	}
	if j1.key == a.key {
		t.Error("inline workload collides with catalog workload")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRU(2)
	e := func(lat float64) cacheEntry {
		var ce cacheEntry
		ce.result.LatSP = lat
		return ce
	}
	c.add("a", e(1))
	c.add("b", e(2))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.add("c", e(3)) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	// Refreshing an existing key must not grow the cache.
	c.add("c", e(4))
	if c.len() != 2 {
		t.Fatalf("len after refresh = %d", c.len())
	}
	got, _ := c.get("c")
	if got.result.LatSP != 4 {
		t.Fatalf("refresh lost: %+v", got.result.LatSP)
	}
}

func TestStreamReplayAndDrop(t *testing.T) {
	s := newStream()
	s.publish("a", 1)
	ch, cancelSub := s.subscribe()
	defer cancelSub()
	s.publish("b", 2)
	s.close()
	var names []string
	for ev := range ch {
		names = append(names, ev.name)
	}
	if strings.Join(names, ",") != "a,b" {
		t.Fatalf("events = %v", names)
	}
	// Publishing after close must not panic or deliver.
	s.publish("c", 3)
	ch2, cancel2 := s.subscribe()
	defer cancel2()
	n := 0
	for range ch2 {
		n++
	}
	if n != 2 {
		t.Fatalf("late replay = %d events, want 2", n)
	}
}
