package serve

// Cluster glue: the two peer-facing routes and the delegation path the
// job runner takes when another node owns a design's key.
//
// Exactly-once across the cluster falls out of three existing pieces:
// the consistent-hash ring gives every key one owner, delegation routes
// non-owners' evaluations to it, and the owner's own single-flight
// index coalesces concurrent delegations (and its own submissions) of
// the same key onto one job. Peer failure at any step falls back to
// local evaluation — requests never fail because a peer did.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"chrysalis/internal/audit"
	"chrysalis/internal/cluster"
	"chrysalis/internal/core"
	"chrysalis/internal/obs"
)

// cachePayload is the wire form of GET /internal/cache/{key}: the
// serializable parts of a cache entry (waveform recordings stay local).
type cachePayload struct {
	Result core.Result   `json:"result"`
	Verify *SimSummary   `json:"verify,omitempty"`
	Audit  *audit.Report `json:"audit,omitempty"`
}

// handleInternalCache serves this node's result cache to peers.
func (s *Server) handleInternalCache(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	entry, ok := s.mgr.cache.get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached result for %q", key))
		return
	}
	writeJSON(w, http.StatusOK, cachePayload{Result: entry.result, Verify: entry.verify, Audit: entry.audit})
}

// handleInternalSubmit accepts a delegated design job from a peer. It
// is handleSubmit minus client quotas (cluster traffic is trusted) and
// with delegation pinned off — a delegated job always resolves on this
// node, so a momentary ring disagreement can never bounce a job
// between nodes. Queue-full still sheds with 429: the submitting peer
// falls back to its local compute, spreading overload instead of
// funneling it to the owner.
func (s *Server) handleInternalSubmit(w http.ResponseWriter, r *http.Request) {
	var req DesignRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid design request: %w", err))
		return
	}
	js, err := normalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	js.noDelegate = true
	// The delegating node sends its job's traceparent; the owner's job
	// becomes a child span of it, so both nodes share one trace ID.
	js.tc = traceFromRequest(r)
	j, reused, err := s.mgr.submit(js)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterValue(s.mgr.retryAfterQueue()))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	code := http.StatusAccepted
	if reused {
		code = http.StatusOK
	}
	writeJSON(w, code, j.status())
}

// runRemote attempts to resolve the job through the key's owner node:
// first a cache probe, then a delegated evaluation. It reports whether
// the job reached a terminal state; false means the caller must run it
// locally (self-owned key, open breaker, or a peer failure mid-flight).
func (m *manager) runRemote(ctx context.Context, j *job) bool {
	if m.cluster == nil || j.js.noDelegate {
		return false
	}
	owner, remote := m.cluster.RemoteOwner(j.js.key)
	if !remote {
		if owner != "" {
			// The key has a remote owner but its breaker is open: the
			// degradation to local compute is a trace-worthy event.
			j.trace.Instant("cluster", "breaker-open", obs.A("peer", owner))
		}
		return false
	}
	// Every peer call under this job carries the job's trace identity,
	// so the owner's spans join this trace instead of starting their own.
	ctx = cluster.WithTraceparent(ctx, j.trace.Context().Traceparent())
	hopStart := time.Now()
	body, hit, err := m.cluster.FetchCached(ctx, owner, j.js.key)
	if err != nil {
		m.cluster.CountFallback()
		m.opts.Logger.Warn("cluster: cache probe failed; evaluating locally",
			"job", j.id, "owner", owner, "error", err)
		return false
	}
	if hit {
		var p cachePayload
		if err := json.Unmarshal(body, &p); err != nil {
			m.cluster.CountFallback()
			m.opts.Logger.Warn("cluster: bad cache payload; evaluating locally",
				"job", j.id, "owner", owner, "error", err)
			return false
		}
		m.cluster.CountRemoteHit()
		m.addPhase(j, "peer-hop", hopStart, time.Now(),
			obs.A("owner", owner), obs.A("outcome", "cache-hit"))
		m.adoptRemote(j, p.Result, p.Verify, p.Audit, true)
		return true
	}
	m.cluster.CountRemoteMiss()

	reqBody, err := json.Marshal(j.js.req)
	if err != nil {
		m.cluster.CountFallback()
		return false
	}
	final, err := m.cluster.Delegate(ctx, owner, reqBody)
	if err != nil {
		if ctx.Err() != nil {
			// The local job was cancelled or timed out while polling; the
			// normal terminal bookkeeping applies.
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				m.finish(j, JobFailed, fmt.Errorf("job exceeded timeout %v", m.opts.JobTimeout))
			} else {
				m.finish(j, JobCancelled, errors.New("cancelled"))
			}
			return true
		}
		m.cluster.CountFallback()
		m.opts.Logger.Warn("cluster: delegation failed; evaluating locally",
			"job", j.id, "owner", owner, "error", err)
		return false
	}
	var st JobStatus
	if err := json.Unmarshal(final, &st); err != nil {
		m.cluster.CountFallback()
		return false
	}
	switch st.State {
	case JobDone:
		if st.Result == nil {
			m.cluster.CountFallback()
			return false
		}
		m.addPhase(j, "peer-hop", hopStart, time.Now(),
			obs.A("owner", owner), obs.A("outcome", "delegated"))
		m.fetchRemoteSegment(ctx, j, owner, st.ID)
		m.adoptRemote(j, *st.Result, st.Verify, st.Audit, false)
		return true
	case JobFailed:
		// A deterministic failure (bad spec reaching the search) fails
		// identically everywhere; re-running locally would just repeat it.
		m.addPhase(j, "peer-hop", hopStart, time.Now(),
			obs.A("owner", owner), obs.A("outcome", "delegated-failed"))
		m.fetchRemoteSegment(ctx, j, owner, st.ID)
		m.finish(j, JobFailed, fmt.Errorf("delegated to %s: %s", owner, st.Error))
		return true
	default:
		// Cancelled on the owner (its shutdown, its client): not our
		// client's cancellation, so evaluate locally.
		m.cluster.CountFallback()
		return false
	}
}

// fetchRemoteSegment pulls the owner's trace segment for a delegated
// job so the local trace export stitches both nodes' spans into one
// timeline. Best effort: a failed fetch costs the remote spans, never
// the job.
func (m *manager) fetchRemoteSegment(ctx context.Context, j *job, owner, remoteID string) {
	if remoteID == "" {
		return
	}
	body, status, err := m.cluster.Get(ctx, owner, "/internal/jobs/"+remoteID+"/timeline")
	if err != nil || status != http.StatusOK {
		m.opts.Logger.Warn("cluster: remote trace segment fetch failed",
			"job", j.id, "owner", owner, "remote_job", remoteID, "status", status, "error", err)
		return
	}
	var it internalTimeline
	if err := json.Unmarshal(body, &it); err != nil {
		m.opts.Logger.Warn("cluster: bad remote trace segment",
			"job", j.id, "owner", owner, "error", err)
		return
	}
	j.mu.Lock()
	j.remote = &remoteSegment{node: it.Node, anchorUnixMicros: it.AnchorUnixMicros, events: it.Events}
	j.mu.Unlock()
}

// adoptRemote installs a peer-computed result and finishes the job.
// The result also enters this node's cache via finish, so repeated
// submissions here stop needing the peer at all.
func (m *manager) adoptRemote(j *job, res core.Result, verify *SimSummary, rep *audit.Report, fromCache bool) {
	j.mu.Lock()
	r := res
	j.result = &r
	j.verify = verify
	j.audit = rep
	j.cached = fromCache
	j.mu.Unlock()
	m.finish(j, JobDone, nil)
}
