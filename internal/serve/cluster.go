package serve

// Cluster glue: the two peer-facing routes and the delegation path the
// job runner takes when another node owns a design's key.
//
// Exactly-once across the cluster falls out of three existing pieces:
// the consistent-hash ring gives every key one owner, delegation routes
// non-owners' evaluations to it, and the owner's own single-flight
// index coalesces concurrent delegations (and its own submissions) of
// the same key onto one job. Peer failure at any step falls back to
// local evaluation — requests never fail because a peer did.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"chrysalis/internal/audit"
	"chrysalis/internal/core"
)

// cachePayload is the wire form of GET /internal/cache/{key}: the
// serializable parts of a cache entry (waveform recordings stay local).
type cachePayload struct {
	Result core.Result   `json:"result"`
	Verify *SimSummary   `json:"verify,omitempty"`
	Audit  *audit.Report `json:"audit,omitempty"`
}

// handleInternalCache serves this node's result cache to peers.
func (s *Server) handleInternalCache(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	entry, ok := s.mgr.cache.get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached result for %q", key))
		return
	}
	writeJSON(w, http.StatusOK, cachePayload{Result: entry.result, Verify: entry.verify, Audit: entry.audit})
}

// handleInternalSubmit accepts a delegated design job from a peer. It
// is handleSubmit minus client quotas (cluster traffic is trusted) and
// with delegation pinned off — a delegated job always resolves on this
// node, so a momentary ring disagreement can never bounce a job
// between nodes. Queue-full still sheds with 429: the submitting peer
// falls back to its local compute, spreading overload instead of
// funneling it to the owner.
func (s *Server) handleInternalSubmit(w http.ResponseWriter, r *http.Request) {
	var req DesignRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid design request: %w", err))
		return
	}
	js, err := normalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	js.noDelegate = true
	j, reused, err := s.mgr.submit(js)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterValue(s.mgr.retryAfterQueue()))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	code := http.StatusAccepted
	if reused {
		code = http.StatusOK
	}
	writeJSON(w, code, j.status())
}

// runRemote attempts to resolve the job through the key's owner node:
// first a cache probe, then a delegated evaluation. It reports whether
// the job reached a terminal state; false means the caller must run it
// locally (self-owned key, open breaker, or a peer failure mid-flight).
func (m *manager) runRemote(ctx context.Context, j *job) bool {
	if m.cluster == nil || j.js.noDelegate {
		return false
	}
	owner, remote := m.cluster.RemoteOwner(j.js.key)
	if !remote {
		return false
	}
	body, hit, err := m.cluster.FetchCached(ctx, owner, j.js.key)
	if err != nil {
		m.cluster.CountFallback()
		m.opts.Logger.Warn("cluster: cache probe failed; evaluating locally",
			"job", j.id, "owner", owner, "error", err)
		return false
	}
	if hit {
		var p cachePayload
		if err := json.Unmarshal(body, &p); err != nil {
			m.cluster.CountFallback()
			m.opts.Logger.Warn("cluster: bad cache payload; evaluating locally",
				"job", j.id, "owner", owner, "error", err)
			return false
		}
		m.cluster.CountRemoteHit()
		m.adoptRemote(j, p.Result, p.Verify, p.Audit, true)
		return true
	}
	m.cluster.CountRemoteMiss()

	reqBody, err := json.Marshal(j.js.req)
	if err != nil {
		m.cluster.CountFallback()
		return false
	}
	final, err := m.cluster.Delegate(ctx, owner, reqBody)
	if err != nil {
		if ctx.Err() != nil {
			// The local job was cancelled or timed out while polling; the
			// normal terminal bookkeeping applies.
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				m.finish(j, JobFailed, fmt.Errorf("job exceeded timeout %v", m.opts.JobTimeout))
			} else {
				m.finish(j, JobCancelled, errors.New("cancelled"))
			}
			return true
		}
		m.cluster.CountFallback()
		m.opts.Logger.Warn("cluster: delegation failed; evaluating locally",
			"job", j.id, "owner", owner, "error", err)
		return false
	}
	var st JobStatus
	if err := json.Unmarshal(final, &st); err != nil {
		m.cluster.CountFallback()
		return false
	}
	switch st.State {
	case JobDone:
		if st.Result == nil {
			m.cluster.CountFallback()
			return false
		}
		m.adoptRemote(j, *st.Result, st.Verify, st.Audit, false)
		return true
	case JobFailed:
		// A deterministic failure (bad spec reaching the search) fails
		// identically everywhere; re-running locally would just repeat it.
		m.finish(j, JobFailed, fmt.Errorf("delegated to %s: %s", owner, st.Error))
		return true
	default:
		// Cancelled on the owner (its shutdown, its client): not our
		// client's cancellation, so evaluate locally.
		m.cluster.CountFallback()
		return false
	}
}

// adoptRemote installs a peer-computed result and finishes the job.
// The result also enters this node's cache via finish, so repeated
// submissions here stop needing the peer at all.
func (m *manager) adoptRemote(j *job, res core.Result, verify *SimSummary, rep *audit.Report, fromCache bool) {
	j.mu.Lock()
	r := res
	j.result = &r
	j.verify = verify
	j.audit = rep
	j.cached = fromCache
	j.mu.Unlock()
	m.finish(j, JobDone, nil)
}
