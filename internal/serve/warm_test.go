package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"chrysalis/internal/core"
)

// submitAndWait posts one design request and polls it to completion.
func submitAndWait(t *testing.T, base string, req DesignRequest) JobStatus {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/designs", req)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State.terminal() {
		return st
	}
	final := pollJob(t, base, st.ID)
	if final.State != JobDone || final.Result == nil {
		t.Fatalf("job state %s (%s)", final.State, final.Error)
	}
	return final
}

// normalizeResult strips the informational fields that legitimately
// differ between warm and cold servers so the designs can be compared
// bit for bit.
func normalizeResult(r core.Result) core.Result {
	r.Workers = 0
	r.CacheHits, r.CacheMisses, r.WarmHits = 0, 0, 0
	return r
}

// TestWarmSmoke is the end-to-end warm-start check behind `make
// warm-smoke`: on a warm-enabled daemon, a cold job fills the tier and
// a second near-duplicate job reports warm hits; the warm job's design
// is bit-identical to the same request served by a daemon with no warm
// tier at all.
func TestWarmSmoke(t *testing.T) {
	_, warmTS := newTestServer(t, Options{Workers: 1, WarmCacheMB: 64, Logger: testLogger(t)})
	_, coldTS := newTestServer(t, Options{Workers: 1, Logger: testLogger(t)})

	// Job 1 fills the tier: nothing resident yet, so no warm hits.
	first := submitAndWait(t, warmTS.URL, smallJob())
	if first.Result.WarmHits != 0 {
		t.Fatalf("first job on an empty tier reports WarmHits=%d, want 0", first.Result.WarmHits)
	}

	// Job 2 is a near-duplicate (different seed, so a distinct job key
	// that really re-runs the search) and must reuse the ladders job 1
	// built.
	warmReq := smallJob()
	warmReq.Seed = 8
	warmJob := submitAndWait(t, warmTS.URL, warmReq)
	if warmJob.Result.WarmHits == 0 {
		t.Errorf("warm job reports WarmHits=0; tier never engaged (result %+v)", warmJob.Result)
	}

	// Determinism: the identical request on a tier-less daemon returns
	// the identical design.
	coldJob := submitAndWait(t, coldTS.URL, warmReq)
	if coldJob.Result.WarmHits != 0 {
		t.Errorf("cold server reports WarmHits=%d, want 0", coldJob.Result.WarmHits)
	}
	if !reflect.DeepEqual(normalizeResult(*warmJob.Result), normalizeResult(*coldJob.Result)) {
		t.Errorf("warm design differs from cold design\nwarm: %+v\ncold: %+v", warmJob.Result, coldJob.Result)
	}

	// The tier's counters are on /metrics …
	if hits := metricValue(t, warmTS.URL, "chrysalisd_warm_cache_hits_total"); hits == 0 {
		t.Error("chrysalisd_warm_cache_hits_total = 0 after a warm job")
	}
	if entries := metricValue(t, warmTS.URL, "chrysalisd_warm_cache_entries"); entries == 0 {
		t.Error("chrysalisd_warm_cache_entries = 0 after two jobs")
	}

	// … on the fleet snapshot …
	var fleet fleetResponse
	if code := getJSON(t, warmTS.URL+"/v1/fleet", &fleet); code != http.StatusOK {
		t.Fatalf("fleet: %d", code)
	}
	if len(fleet.Nodes) != 1 || !fleet.Nodes[0].WarmEnabled {
		t.Fatalf("fleet warm row missing: %+v", fleet.Nodes)
	}
	if ns := fleet.Nodes[0]; ns.WarmHits == 0 || ns.WarmEntries == 0 {
		t.Errorf("fleet warm stats empty: %+v", ns)
	}

	// … and on the dashboard, but only when the tier is enabled.
	if body := fetchBody(t, warmTS.URL+"/debug/dashboard"); !strings.Contains(body, "warm tier") {
		t.Error("warm-enabled dashboard missing the warm tier card")
	}
	if body := fetchBody(t, coldTS.URL+"/debug/dashboard"); strings.Contains(body, "warm tier") {
		t.Error("tier-less dashboard renders a warm tier card")
	}

	// A tier-less /metrics must not export warm families at all.
	if body := fetchBody(t, coldTS.URL+"/metrics"); strings.Contains(body, "chrysalisd_warm_cache") {
		t.Error("tier-less daemon exports warm-cache metrics")
	}
}

// fetchBody GETs a URL and returns its body as a string.
func fetchBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
