package serve

// Fleet telemetry. Every node exposes a one-shot snapshot of its own
// health at GET /internal/metrics/snapshot; GET /v1/fleet pulls every
// peer's snapshot on demand and returns the aggregated cluster view —
// per-node queue depth, cache hit ratio, breaker states, simulator
// fast-path ratio and SLO burn rates — without any background gossip:
// the fleet view is only as fresh as the request that asked for it.

import (
	"encoding/json"
	"net/http"
	"sync"

	"chrysalis/internal/cluster"
	"chrysalis/internal/obs"
	"chrysalis/internal/sim"
)

// nodeSnapshot is one node's self-reported health, the unit of
// /internal/metrics/snapshot and the rows of /v1/fleet.
type nodeSnapshot struct {
	Node            string              `json:"node"`
	QueueDepth      int                 `json:"queue_depth"`
	JobsRunning     int64               `json:"jobs_running"`
	JobsDone        int64               `json:"jobs_done"`
	JobsFailed      int64               `json:"jobs_failed"`
	JobRecords      int                 `json:"job_records"`
	CacheEntries    int                 `json:"cache_entries"`
	CacheHits       int64               `json:"cache_hits"`
	CacheMisses     int64               `json:"cache_misses"`
	CacheHitRatio   float64             `json:"cache_hit_ratio"`
	Evaluations     int64               `json:"evaluations"`
	PeersUp         int                 `json:"peers_up"`
	Breakers        []cluster.PeerState `json:"breakers,omitempty"`
	SimFastSteps    int64               `json:"sim_fast_steps"`
	SimLiteralSteps int64               `json:"sim_literal_steps"`
	SimFastRatio    float64             `json:"sim_fast_ratio"`
	TraceDropped    int64               `json:"trace_dropped"`
	SLOBurn         []obs.WindowBurn    `json:"slo_burn,omitempty"`

	// Warm-start tier residency and traffic (zero values when the node
	// runs without -warm-cache-mb). In cluster mode the consistent-hash
	// ring specializes each node's tier to its own key range, so
	// per-node hit ratios are the interesting signal.
	WarmEnabled   bool    `json:"warm_enabled"`
	WarmBytes     int64   `json:"warm_bytes,omitempty"`
	WarmEntries   int64   `json:"warm_entries,omitempty"`
	WarmHits      int64   `json:"warm_hits,omitempty"`
	WarmMisses    int64   `json:"warm_misses,omitempty"`
	WarmEvictions int64   `json:"warm_evictions,omitempty"`
	WarmHitRatio  float64 `json:"warm_hit_ratio,omitempty"`
}

// snapshot collects this node's current health.
func (m *manager) snapshot() nodeSnapshot {
	met := m.met
	ns := nodeSnapshot{
		Node:         m.nodeName(),
		QueueDepth:   len(m.queue),
		JobsRunning:  met.jobsRunning.Value(),
		JobsDone:     met.jobsDone.Value(),
		JobsFailed:   met.jobsFailed.Value(),
		JobRecords:   m.jobCount(),
		CacheEntries: m.cache.len(),
		CacheHits:    met.cacheHits.Value(),
		CacheMisses:  met.cacheMisses.Value(),
		Evaluations:  met.evaluations.Value(),
		TraceDropped: obs.TraceDroppedTotal(),
	}
	if lookups := ns.CacheHits + ns.CacheMisses; lookups > 0 {
		ns.CacheHitRatio = float64(ns.CacheHits) / float64(lookups)
	}
	_, fast, lit, _ := sim.EventStats()
	ns.SimFastSteps, ns.SimLiteralSteps = fast, lit
	if total := fast + lit; total > 0 {
		ns.SimFastRatio = float64(fast) / float64(total)
	}
	if m.cluster != nil {
		ns.PeersUp = m.cluster.PeersUp()
		ns.Breakers = m.cluster.PeerStates()
	}
	if met.slo != nil {
		ns.SLOBurn = met.slo.BurnRates()
	}
	if m.warm != nil {
		ws := m.warm.Stats()
		ns.WarmEnabled = true
		ns.WarmBytes = ws.Bytes
		ns.WarmEntries = ws.Entries
		ns.WarmHits = ws.Hits
		ns.WarmMisses = ws.Misses
		ns.WarmEvictions = ws.Evictions
		ns.WarmHitRatio = m.warm.HitRatio()
	}
	return ns
}

// handleMetricsSnapshot serves this node's snapshot to fleet pullers.
func (s *Server) handleMetricsSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.snapshot())
}

// fleetResponse is the wire form of GET /v1/fleet.
type fleetResponse struct {
	Nodes []nodeSnapshot `json:"nodes"`
	// Unreachable lists peers whose snapshot pull failed this request
	// (open breaker, timeout, bad body). Their last-known state is NOT
	// substituted — a missing row means "don't know", not "fine".
	Unreachable []string `json:"unreachable,omitempty"`
}

// fleet aggregates the cluster view: this node sampled locally, every
// remote peer pulled concurrently. A single node returns just itself.
func (m *manager) fleet(r *http.Request) fleetResponse {
	resp := fleetResponse{Nodes: []nodeSnapshot{m.snapshot()}}
	if m.cluster == nil {
		return resp
	}
	peers := make([]string, 0, len(m.opts.Peers))
	for _, p := range m.opts.Peers {
		if p != m.opts.Self {
			peers = append(peers, p)
		}
	}
	type pulled struct {
		snap nodeSnapshot
		peer string
		ok   bool
	}
	out := make([]pulled, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			out[i].peer = peer
			body, status, err := m.cluster.Get(r.Context(), peer, "/internal/metrics/snapshot")
			if err != nil || status != http.StatusOK {
				return
			}
			var ns nodeSnapshot
			if json.Unmarshal(body, &ns) != nil {
				return
			}
			out[i].snap, out[i].ok = ns, true
		}(i, peer)
	}
	wg.Wait()
	for _, p := range out {
		if p.ok {
			resp.Nodes = append(resp.Nodes, p.snap)
		} else {
			resp.Unreachable = append(resp.Unreachable, p.peer)
		}
	}
	return resp
}

// handleFleet serves the aggregated fleet view.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.fleet(r))
}
