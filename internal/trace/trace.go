// Package trace renders experiment output: aligned text tables, CSV,
// and ASCII bar charts. The experiment harness (cmd/experiments) uses
// it to print the rows and series behind every figure and table of the
// paper's evaluation.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded, long rows are an error
// surfaced at render time (kept simple for harness code).
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered
// with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			b.WriteString(cell)
			if i < cols-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(cell))+2))
			}
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2) + "\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as CSV (headers first).
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Headers) > 0 {
		if err := cw.Write(t.Headers); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Bar renders a labeled ASCII bar of width proportional to frac in
// [0,1], e.g. for the Figure 8/9 energy breakdowns.
func Bar(label string, frac float64, width int) string {
	if width <= 0 {
		width = 40
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return fmt.Sprintf("%-14s |%s%s| %5.1f%%", label,
		strings.Repeat("█", n), strings.Repeat(" ", width-n), frac*100)
}

// Series is a named sequence of (x, y) samples for figure regeneration.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a sample.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Render writes the series as two aligned columns.
func (s Series) Render(w io.Writer) error {
	var b strings.Builder
	b.WriteString("# " + s.Name + "\n")
	for i := range s.X {
		fmt.Fprintf(&b, "%12.6g  %12.6g\n", s.X[i], s.Y[i])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Waveform renders an ASCII strip chart of (t, v) samples: rows are
// voltage bands from vMax at the top to vMin at the bottom, columns are
// time buckets. Threshold voltages can be overlaid by the caller by
// choosing vMin/vMax accordingly.
func Waveform(times, values []float64, width, height int) string {
	if len(times) == 0 || len(times) != len(values) || width < 2 || height < 2 {
		return ""
	}
	tMin, tMax := times[0], times[len(times)-1]
	if tMax <= tMin {
		return ""
	}
	vMin, vMax := values[0], values[0]
	for _, v := range values {
		if v < vMin {
			vMin = v
		}
		if v > vMax {
			vMax = v
		}
	}
	if vMax <= vMin {
		vMax = vMin + 1
	}
	// Bucket the samples by column, keeping the last value per column.
	cols := make([]float64, width)
	seen := make([]bool, width)
	for i, tm := range times {
		c := int((tm - tMin) / (tMax - tMin) * float64(width-1))
		cols[c] = values[i]
		seen[c] = true
	}
	// Forward-fill empty columns.
	last := values[0]
	for c := range cols {
		if seen[c] {
			last = cols[c]
		} else {
			cols[c] = last
		}
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c, v := range cols {
		r := int((vMax - v) / (vMax - vMin) * float64(height-1))
		grid[r][c] = '*'
	}
	var b strings.Builder
	for r, row := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%6.2fV ", vMax)
		case height - 1:
			label = fmt.Sprintf("%6.2fV ", vMin)
		default:
			label = strings.Repeat(" ", 8)
		}
		b.WriteString(label + string(row) + "\n")
	}
	b.WriteString(strings.Repeat(" ", 8) + fmt.Sprintf("t: %.3gs .. %.3gs", tMin, tMax))
	return b.String()
}
