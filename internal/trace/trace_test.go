package trace

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== Demo ==", "name", "alpha", "beta", "2.5", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableRenderRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only-one")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "only-one") {
		t.Fatal("short row should render padded")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "h1", "h2")
	tb.AddRow("a", "b,with,commas")
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "h1,h2\n") {
		t.Fatalf("csv header missing: %q", out)
	}
	if !strings.Contains(out, `"b,with,commas"`) {
		t.Fatalf("csv quoting missing: %q", out)
	}
}

func TestBar(t *testing.T) {
	full := Bar("ckpt", 1.0, 10)
	if !strings.Contains(full, strings.Repeat("█", 10)) {
		t.Fatalf("full bar: %q", full)
	}
	if !strings.Contains(full, "100.0%") {
		t.Fatalf("percentage: %q", full)
	}
	empty := Bar("leak", 0, 10)
	if strings.Contains(empty, "█") {
		t.Fatalf("empty bar should have no blocks: %q", empty)
	}
	clamped := Bar("x", 1.7, 10)
	if !strings.Contains(clamped, "100.0%") {
		t.Fatalf("overfull should clamp: %q", clamped)
	}
	neg := Bar("x", -0.5, 0)
	if !strings.Contains(neg, "0.0%") {
		t.Fatalf("negative should clamp: %q", neg)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "lat-vs-sp"
	s.Add(1, 10)
	s.Add(2, 5)
	var sb strings.Builder
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# lat-vs-sp") || !strings.Contains(out, "10") {
		t.Fatalf("series output: %q", out)
	}
	if len(s.X) != 2 || s.Y[1] != 5 {
		t.Fatal("Add should append")
	}
}

func TestWaveform(t *testing.T) {
	times := []float64{0, 1, 2, 3, 4}
	values := []float64{1.8, 2.4, 3.0, 1.8, 3.0}
	out := Waveform(times, values, 20, 6)
	if out == "" {
		t.Fatal("empty waveform")
	}
	if !strings.Contains(out, "3.00V") || !strings.Contains(out, "1.80V") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no samples plotted")
	}
	// Degenerate inputs are rejected quietly.
	if Waveform(nil, nil, 20, 6) != "" {
		t.Fatal("empty input should render nothing")
	}
	if Waveform([]float64{1}, []float64{2, 3}, 20, 6) != "" {
		t.Fatal("mismatched lengths should render nothing")
	}
	if Waveform([]float64{1, 1}, []float64{2, 2}, 20, 6) != "" {
		t.Fatal("zero time span should render nothing")
	}
	if Waveform(times, values, 1, 1) != "" {
		t.Fatal("tiny canvas should render nothing")
	}
	// Flat signal should not divide by zero.
	flat := Waveform([]float64{0, 1}, []float64{2, 2}, 10, 4)
	if flat == "" {
		t.Fatal("flat signal should still render")
	}
}
