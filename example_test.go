package chrysalis_test

import (
	"fmt"

	"chrysalis"
)

// ExampleEvaluate assesses one concrete design point without running a
// search: an 8 cm² panel and 100 µF capacitor driving HAR on the
// MSP430 platform.
func ExampleEvaluate() {
	spec := chrysalis.Spec{
		WorkloadName: "har",
		Platform:     chrysalis.MSP430,
		Objective:    chrysalis.MinimizeLatTimesSP,
	}
	ev, err := chrysalis.Evaluate(spec, chrysalis.DesignPoint{PanelArea: 8, Cap: 100e-6})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("feasible:", ev.Feasible)
	fmt.Println("environments evaluated:", len(ev.PerEnv))
	// Output:
	// feasible: true
	// environments evaluated: 2
}

// ExampleSimulate replays a design point on the step-based
// co-simulator and inspects the intermittent execution.
func ExampleSimulate() {
	spec := chrysalis.Spec{
		WorkloadName: "kws",
		Platform:     chrysalis.MSP430,
		Objective:    chrysalis.MinimizeLatency,
	}
	run, err := chrysalis.Simulate(spec, chrysalis.DesignPoint{PanelArea: 8, Cap: 470e-6}, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", run.Completed)
	fmt.Println("checkpoints at least one:", run.Checkpoints >= 1)
	// Output:
	// completed: true
	// checkpoints at least one: true
}

// ExampleParseWorkload defines a custom network in JSON and counts its
// compute.
func ExampleParseWorkload() {
	w, err := chrysalis.ParseWorkload([]byte(`{
	  "name": "sensor-mlp",
	  "input": [32, 1, 1],
	  "elem_bytes": 2,
	  "layers": [
	    {"type": "dense", "out": 16},
	    {"type": "dense", "out": 4}
	  ]
	}`))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("layers:", len(w.Layers))
	fmt.Println("MACs:", w.TotalMACs())
	// Output:
	// layers: 2
	// MACs: 576
}

// ExampleWorkloads lists a few of the built-in benchmark networks.
func ExampleWorkloads() {
	names := chrysalis.Workloads()
	fmt.Println(names[0], names[1], names[2], names[3])
	// Output:
	// simpleconv cifar10 har kws
}

// ExampleDesignPreset designs an AuT for a built-in deployment
// scenario: a wearable with a wrist-scale panel budget.
func ExampleDesignPreset() {
	res, err := chrysalis.DesignPreset("wearable", "kws",
		chrysalis.SearchConfig{Budget: 120, Seed: 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("panel within budget:", res.PanelArea <= 6)
	fmt.Println("objective:", res.Objective)
	// Output:
	// panel within budget: true
	// objective: lat
}

// ExampleSimulateSeries runs several inferences back-to-back and
// reports deployment throughput.
func ExampleSimulateSeries() {
	spec := chrysalis.Spec{
		WorkloadName: "fc",
		Platform:     chrysalis.MSP430,
		Objective:    chrysalis.MinimizeLatency,
	}
	sr, err := chrysalis.SimulateSeries(spec,
		chrysalis.DesignPoint{PanelArea: 8, Cap: 100e-6}, nil, 4, 0.5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", sr.Completed)
	fmt.Println("has throughput:", sr.ThroughputPerHour > 0)
	// Output:
	// completed: 4
	// has throughput: true
}
